"""Seeded random fault schedules for the chaos soak.

A :class:`FaultPlanGenerator` samples :class:`~repro.faults.spec.FaultPlan`
objects from a parameterized distribution over the simulated clock:

* ``density`` — expected number of fault events per plan (Poisson);
* ``mix`` — relative weights of the nine fault kinds (see
  :data:`DEFAULT_MIX`; a kind's weight at zero removes it);
* ``burstiness`` — probability mass of event times clustered into a
  few narrow windows instead of spread uniformly, the "everything goes
  wrong at once" regime where recovery interleavings get interesting;
* ``correlated`` — link-plane faults preferentially hit wires incident
  to one victim device per plan, modelling a single flaky riser rather
  than independent failures.

Two invariants keep the *default* distribution recoverable by design,
so a green 50-seed soak means something:

1. network partitions always heal (``duration`` is drawn, never None)
   — the hardened protocol waits the heal out;
2. host-staging connections are never fault targets, so the degrade
   fallback survives any combination of dead data-plane wires.

Everything is a pure function of the seed: ``sample(seed)`` called
twice returns plans with identical events.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.faults.spec import (
    DeviceCrash,
    DeviceStall,
    FaultEvent,
    FaultPlan,
    FlagDelay,
    FlagDrop,
    FlagDuplicate,
    LinkDegrade,
    LinkFlap,
    LinkLoss,
    NetworkPartition,
    _event_sort_key,
)

__all__ = ["FaultPlanGenerator", "ElasticScheduleGenerator", "DEFAULT_MIX"]

#: Default relative weights of the fault kinds.  Crashes default to
#: zero: a confirmed device death legitimately aborts the allgather
#: (``DeviceLostError``), so the default soak distribution stays in the
#: recoverable regime; opt in via ``mix={"device-crash": w, ...}``.
DEFAULT_MIX: Dict[str, float] = {
    "device-stall": 1.0,
    "device-crash": 0.0,
    "link-degrade": 1.5,
    "link-flap": 1.0,
    "link-loss": 0.75,
    "network-partition": 0.75,
    "flag-drop": 1.5,
    "flag-delay": 1.0,
    "flag-duplicate": 1.25,
}


class FaultPlanGenerator:
    """Samples seeded fault plans over ``[0, horizon)`` simulated seconds.

    Parameters
    ----------
    horizon:
        Width of the fault window — typically the unarmed run's
        ``total_time``, so every event lands while the protocol is live.
    devices:
        Device ids fault targets are drawn from.
    connections:
        Data-plane connection names link faults are drawn from.
    topology:
        Optional :class:`~repro.topology.topology.Topology`.  When
        given, host-staging connection names are excluded from the
        fault targets (keeping the degrade fallback alive) and
        partitions sever the full group of wires incident to one
        device — a realistic "unplugged riser" rather than a random
        subset.
    stages:
        Number of protocol stages flag faults may address.
    """

    def __init__(
        self,
        horizon: float,
        devices: Sequence[int],
        connections: Sequence[str],
        *,
        topology=None,
        density: float = 4.0,
        mix: Optional[Dict[str, float]] = None,
        burstiness: float = 0.0,
        correlated: bool = False,
        stages: int = 2,
        max_drop_count: int = 2,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if density < 0:
            raise ValueError("density must be non-negative")
        if not 0.0 <= burstiness <= 1.0:
            raise ValueError("burstiness must lie in [0, 1]")
        if not devices:
            raise ValueError("need at least one device")
        self.horizon = float(horizon)
        self.devices = [int(d) for d in devices]
        self.topology = topology
        self.density = float(density)
        self.burstiness = float(burstiness)
        self.correlated = bool(correlated)
        self.stages = max(int(stages), 1)
        self.max_drop_count = max(int(max_drop_count), 1)

        host_names = set()
        if topology is not None:
            for d in topology.devices():
                for conn in topology.host_write_path(d):
                    host_names.add(conn.name)
                for conn in topology.host_read_path(d):
                    host_names.add(conn.name)
        #: Connections eligible as fault targets (host staging excluded).
        self.connections = sorted(
            str(c) for c in connections if str(c) not in host_names
        )
        #: Per-device incident connection groups (partition victims).
        self._incident: Dict[int, List[str]] = {}
        if topology is not None:
            for link in topology.links:
                for end in (link.src, link.dst):
                    bucket = self._incident.setdefault(end, [])
                    for conn in link.connections:
                        if conn.name not in host_names and conn.name not in bucket:
                            bucket.append(conn.name)
            for bucket in self._incident.values():
                bucket.sort()

        merged = dict(DEFAULT_MIX)
        if mix:
            unknown = sorted(set(mix) - set(DEFAULT_MIX))
            if unknown:
                raise ValueError(f"unknown fault kinds in mix: {unknown}")
            merged.update(mix)
        if not self.connections:
            for kind in ("link-degrade", "link-flap", "link-loss",
                         "network-partition"):
                merged[kind] = 0.0
        self.mix = {k: float(w) for k, w in merged.items() if w > 0.0}
        if not self.mix:
            raise ValueError("the fault mix is empty")

    # ------------------------------------------------------------------
    def sample(self, seed: int) -> FaultPlan:
        """One plan, a pure function of ``seed``."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.poisson(self.density))
        kinds = sorted(self.mix)
        weights = np.array([self.mix[k] for k in kinds], dtype=float)
        weights /= weights.sum()

        # Burst mode: a couple of narrow windows soak up `burstiness`
        # of the probability mass; the rest of the times stay uniform.
        centers = rng.uniform(0.1, 0.9, size=2) * self.horizon
        victim = int(rng.choice(self.devices))  # correlated-mode target

        events: List[FaultEvent] = []
        for _ in range(n):
            if self.burstiness > 0 and rng.random() < self.burstiness:
                center = float(rng.choice(centers))
                time = center + float(rng.normal(0.0, 0.02 * self.horizon))
                time = min(max(time, 0.0), self.horizon * 0.98)
            else:
                time = float(rng.uniform(0.0, self.horizon * 0.9))
            kind = str(rng.choice(kinds, p=weights))
            event = self._draw(kind, time, victim, rng)
            if event is not None:
                events.append(event)
        events.sort(key=_event_sort_key)
        return FaultPlan(events, seed=seed)

    # ------------------------------------------------------------------
    def _pick_connection(self, victim: int, rng) -> str:
        """One fault-target wire; correlated mode prefers the victim's."""
        pool = self.connections
        if self.correlated:
            incident = self._incident.get(victim)
            if incident:
                pool = incident
        return str(rng.choice(pool))

    def _partition_group(self, victim: int, rng) -> List[str]:
        """The wires one partition severs."""
        incident = self._incident.get(victim)
        if incident:
            return list(incident)
        width = min(len(self.connections), int(rng.integers(2, 5)))
        picked = rng.choice(
            self.connections, size=max(width, 1), replace=False
        )
        return sorted(str(c) for c in picked)

    def _flag_target(self, kind: str, victim: int, rng):
        """(flag kind, device, peer, stage) for a control-plane fault."""
        flavor = "ready" if rng.random() < 0.5 else "done"
        device = victim if self.correlated else int(rng.choice(self.devices))
        peer = None
        if flavor == "done":
            others = [d for d in self.devices if d != device]
            peer = int(rng.choice(others)) if others else None
            if peer is None:
                flavor = "ready"
        stage = int(rng.integers(0, self.stages))
        return flavor, device, peer, stage

    def _draw(self, kind: str, time: float, victim: int, rng):
        h = self.horizon
        if kind == "device-stall":
            return DeviceStall(
                device=victim if self.correlated else int(rng.choice(self.devices)),
                time=time,
                duration=float(rng.uniform(0.05, 0.3)) * h,
            )
        if kind == "device-crash":
            return DeviceCrash(
                device=victim if self.correlated else int(rng.choice(self.devices)),
                time=time,
            )
        if kind == "link-degrade":
            return LinkDegrade(
                connection=self._pick_connection(victim, rng),
                time=time,
                factor=float(rng.uniform(0.2, 0.8)),
                duration=(
                    None
                    if rng.random() < 0.3  # permanent (a worn cable)
                    else float(rng.uniform(0.1, 0.4)) * h
                ),
            )
        if kind == "link-flap":
            return LinkFlap(
                connection=self._pick_connection(victim, rng),
                time=time,
                period=float(rng.uniform(0.02, 0.1)) * h,
                count=int(rng.integers(1, 4)),
            )
        if kind == "link-loss":
            return LinkLoss(
                connection=self._pick_connection(victim, rng), time=time
            )
        if kind == "network-partition":
            return NetworkPartition(
                connections=tuple(self._partition_group(victim, rng)),
                time=time,
                # Always heals: keeps the default distribution in the
                # recoverable regime (the protocol waits the heal out).
                duration=float(rng.uniform(0.1, 0.4)) * h,
            )
        if kind == "flag-drop":
            flavor, device, peer, stage = self._flag_target(kind, victim, rng)
            return FlagDrop(
                kind=flavor, device=device, peer=peer, stage=stage,
                count=int(rng.integers(1, self.max_drop_count + 1)),
            )
        if kind == "flag-delay":
            flavor, device, peer, stage = self._flag_target(kind, victim, rng)
            return FlagDelay(
                kind=flavor, device=device, peer=peer, stage=stage,
                delay=float(rng.uniform(0.01, 0.2)) * h,
            )
        if kind == "flag-duplicate":
            flavor, device, peer, stage = self._flag_target(kind, victim, rng)
            return FlagDuplicate(
                kind=flavor, device=device, peer=peer, stage=stage,
                copies=int(rng.integers(1, 3)),
                jitter=float(rng.uniform(0.0, 0.05)) * h,
                count=int(rng.integers(1, 3)),
            )
        raise ValueError(f"unknown fault kind {kind!r}")  # pragma: no cover


class ElasticScheduleGenerator:
    """Seeded random grow/shrink schedules for the mixed elastic soak.

    Samples ``(epoch, kind, devices)`` action lists for
    :meth:`~repro.elastic.controller.ElasticController.train_with_schedule`.
    The sampler tracks the active device set while drawing, so every
    schedule is *legal by construction*: shrinks never go below
    ``min_devices``, grows never exceed the topology, re-added devices
    are ones a previous shrink released, and devices in ``forbidden``
    (e.g. crashed by the interleaved fault plan) are never grow targets.

    Like :class:`FaultPlanGenerator`, ``sample(seed)`` is a pure
    function of the seed.
    """

    def __init__(
        self,
        num_devices: int,
        epochs: int,
        *,
        min_devices: int = 2,
        density: float = 2.0,
        forbidden: Sequence[int] = (),
    ) -> None:
        if num_devices < 2:
            raise ValueError("elastic schedules need at least 2 devices")
        if epochs < 2:
            raise ValueError("elastic schedules need at least 2 epochs")
        if not 1 <= min_devices <= num_devices:
            raise ValueError(
                f"min_devices must lie in [1, {num_devices}], got {min_devices}"
            )
        if density < 0:
            raise ValueError("density must be non-negative")
        self.num_devices = int(num_devices)
        self.epochs = int(epochs)
        self.min_devices = int(min_devices)
        self.density = float(density)
        self.forbidden = sorted(set(int(d) for d in forbidden))

    def sample(self, seed: int):
        """One legal action schedule, a pure function of ``seed``."""
        import numpy as np

        rng = np.random.default_rng([int(seed), 0xE1A5])
        n = max(1, int(rng.poisson(self.density)))
        # Epochs are drawn up front and applied in sorted order: the
        # active-set tracking below then matches the order in which
        # train_with_schedule will actually execute the actions.
        epochs = sorted(int(e) for e in rng.integers(1, self.epochs, size=n))
        active = set(range(self.num_devices))
        actions = []
        for epoch in epochs:
            can_shrink = len(active) > self.min_devices
            grow_pool = sorted(
                set(range(self.num_devices)) - active - set(self.forbidden)
            )
            if can_shrink and (not grow_pool or rng.random() < 0.5):
                width = int(rng.integers(1, len(active) - self.min_devices + 1))
                devs = sorted(
                    int(d) for d in rng.choice(
                        sorted(active), size=width, replace=False
                    )
                )
                active -= set(devs)
                actions.append((epoch, "shrink", tuple(devs)))
            elif grow_pool:
                width = int(rng.integers(1, len(grow_pool) + 1))
                devs = sorted(
                    int(d)
                    for d in rng.choice(grow_pool, size=width, replace=False)
                )
                active |= set(devs)
                actions.append((epoch, "grow", tuple(devs)))
        return actions
