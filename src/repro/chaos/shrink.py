"""Delta-debugging shrinker for failing fault plans.

A soak failure typically arrives as a dozen interleaved fault events of
which one or two actually matter.  :func:`shrink_plan` runs Zeller's
``ddmin`` over the event list: try ever-finer subsets and complements,
keep any candidate that still violates the oracle, stop when no single
event can be removed.  The predicate re-executes the (deterministic)
protocol per candidate, so the result is exact, not heuristic — and
because plans serialize, the minimized schedule is saved as JSON and
replayed bit-for-bit with ``repro chaos --replay plan.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.faults.spec import FaultEvent, FaultPlan

__all__ = ["ShrinkResult", "shrink_plan"]


@dataclass
class ShrinkResult:
    """The minimized plan and how much work finding it took."""

    plan: FaultPlan
    original_events: int
    runs: int
    exhausted: bool  # True when max_runs stopped the search early

    @property
    def events(self) -> int:
        return len(self.plan)


def shrink_plan(
    plan: FaultPlan,
    failing: Callable[[FaultPlan], bool],
    max_runs: int = 200,
) -> ShrinkResult:
    """Minimize ``plan`` to a 1-minimal schedule still satisfying ``failing``.

    ``failing(candidate)`` must return True when the candidate plan
    still violates the oracle under test; it is assumed deterministic
    (the whole stack is seeded).  The input plan itself must fail —
    a ``ValueError`` is raised otherwise, because "shrink a passing
    plan" is always caller confusion.

    ``max_runs`` bounds the number of predicate evaluations (each one
    is a full protocol run); when the budget runs out the best plan
    found so far is returned with ``exhausted=True``.
    """
    state = {"runs": 0}

    def test(events: List[FaultEvent]) -> bool:
        state["runs"] += 1
        return bool(failing(FaultPlan(events, seed=plan.seed)))

    events = list(plan.events)
    if not test(events):
        raise ValueError("shrink_plan needs a failing plan to start from")

    exhausted = False
    granularity = 2
    while len(events) >= 2:
        if state["runs"] >= max_runs:
            exhausted = True
            break
        chunk = max(1, len(events) // granularity)
        subsets = [
            events[i:i + chunk] for i in range(0, len(events), chunk)
        ]
        reduced = False
        # First the subsets (can shrink to 1/granularity at a stroke)...
        for subset in subsets:
            if len(subset) == len(events):
                continue
            if state["runs"] >= max_runs:
                exhausted = True
                break
            if test(subset):
                events = subset
                granularity = 2
                reduced = True
                break
        if reduced or exhausted:
            continue
        # ...then the complements (drop one chunk at a time).
        for i in range(len(subsets)):
            complement = [
                ev for j, s in enumerate(subsets) if j != i for ev in s
            ]
            if not complement or len(complement) == len(events):
                continue
            if state["runs"] >= max_runs:
                exhausted = True
                break
            if test(complement):
                events = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if reduced or exhausted:
            continue
        if granularity >= len(events):
            break  # 1-minimal: no single event can be removed
        granularity = min(len(events), granularity * 2)

    return ShrinkResult(
        plan=FaultPlan(events, seed=plan.seed),
        original_events=len(plan),
        runs=state["runs"],
        exhausted=exhausted,
    )
