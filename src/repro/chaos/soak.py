"""The soak runner: N seeds of chaos, every run held to the oracles.

One :class:`SoakRunner` owns a fixed workload (graph, partition, SPST
plan, payload blocks and their compiled-allgather reference) and a
:class:`~repro.chaos.generator.FaultPlanGenerator` whose horizon is the
workload's fault-free run time.  ``run(seeds)`` then executes one
hardened protocol run per seed — twice, because determinism is itself
an oracle — and scores each against :mod:`repro.chaos.oracles`; every
``train_every``-th seed additionally trains a small model under the
same fault plan and checks gradient parity with a single-device
reference.

Two **test-only hooks** exist so the shrinker's acceptance test can
manufacture failures on demand:

* ``policy_factory`` — swap the recovery policy (e.g. a
  :class:`~repro.faults.policy.RetryOnlyPolicy` that never repairs, so
  a dead wire becomes a liveness violation);
* ``dedupe_flags`` — run with the flag board's duplicate suppression
  off, so a duplicated done flag releases receivers early and the
  delivery oracle catches the corruption.

Leave both at their defaults and a violation means a real bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.chaos.generator import FaultPlanGenerator
from repro.chaos.oracles import (
    ORACLES,
    RunObservation,
    Violation,
    check_bytes,
    check_delivery,
    check_determinism,
    check_liveness,
    check_serve_accounting,
    check_serve_deadline,
    check_timeline,
)
from repro.comm.allgather import CompiledAllgather
from repro.core.relation import CommRelation
from repro.core.spst import SPSTPlanner
from repro.faults.injector import FaultInjector
from repro.faults.log import FaultLog
from repro.faults.policy import (
    DefaultPolicy,
    DeviceLostError,
    UnrecoverableFaultError,
)
from repro.faults.spec import FaultPlan
from repro.graph.generators import rmat
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.partition import partition
from repro.runtime.flags import FlagBoard
from repro.runtime.protocol import ProtocolRunner
from repro.topology import pcie_only, topology_for_gpu_count

__all__ = ["SoakConfig", "SoakRunner", "SeedResult", "SoakReport",
           "staleness_tolerance"]


def staleness_tolerance(staleness: int) -> Tuple[float, float]:
    """The gradient-parity tolerance ladder for delayed aggregation.

    Returns ``(rtol, atol)`` for comparing per-epoch losses of a
    staleness-``s`` :class:`~repro.schemes.distgnn.DistGNNTrainer`
    against the exact single-device reference.  Rung 0 is the exact
    rung — the same bound the plain gradient-parity oracle uses, float
    reduction order only.  Higher rungs widen linearly with the number
    of delayed epochs: the drift of bounded-staleness aggregation is
    proportional to how many updates the stale remote rows missed,
    while a *broken* implementation (wrong rows, dropped local
    gradients) lands orders of magnitude outside the ladder.
    """
    if staleness <= 0:
        return 1e-4, 1e-6
    return min(0.05, 2e-3 * staleness), min(1e-2, 1e-3 * staleness)


def _resolve_topology(name: str, gpus: int):
    """The CLI's topology presets: ``dgx`` (default) or ``pcie``."""
    if name == "pcie":
        return pcie_only(gpus)
    return topology_for_gpu_count(gpus)


@dataclass
class SoakConfig:
    """Knobs of one soak campaign (all deterministic)."""

    gpus: int = 8
    topology: str = "dgx"
    density: float = 4.0
    burstiness: float = 0.0
    correlated: bool = False
    mix: Optional[Dict[str, float]] = None
    #: Every Nth seed also trains under the plan and checks gradient
    #: parity (0 = protocol-level oracles only).
    train_every: int = 0
    train_epochs: int = 3
    #: Staleness values the training seeds additionally sweep with the
    #: delayed-aggregation trainer, each held to its
    #: :func:`staleness_tolerance` rung and to monotone degradation.
    #: Fault-independent, so the sweep runs once per campaign
    #: (() = no staleness sweep).
    staleness_ladder: Tuple[int, ...] = (0, 1, 2)
    #: Every Nth seed additionally runs one epoch of sampled mini-batch
    #: training (seeded sampler/loader from the chaos seed) twice and
    #: holds it to the determinism and minibatch-parity oracles
    #: (0 = no sampled runs).
    sample_every: int = 0
    sample_batch_size: int = 32
    sample_fanouts: Tuple[int, ...] = (4, 4)
    #: Every Nth seed additionally interleaves a seeded random
    #: grow/shrink schedule with the fault plan and holds the elastic
    #: run to the determinism, gradient-parity and delivery oracles
    #: (0 = no elastic actions).
    elastic_every: int = 0
    elastic_epochs: int = 4
    elastic_min_devices: int = 2
    elastic_density: float = 2.0
    #: Every Nth seed additionally runs a scaled-down serving campaign
    #: (:func:`repro.serve.build_scenario`) under the same fault plan
    #: and holds it to the serve-accounting, serve-deadline and
    #: determinism oracles (0 = no serving runs).
    serve_every: int = 0
    serve_scenario: str = "bursty"
    serve_horizon_scale: float = 0.25
    # Workload shape (matches the protocol test suite's fixture).
    num_vertices: int = 250
    num_edges: int = 1800
    graph_seed: int = 4
    partition_seed: int = 0
    feature_dim: int = 5
    coordination: str = "decentralized"
    # ---- test-only hooks (defaults are the honest configuration) ----
    policy_factory: Optional[Callable[[], object]] = None
    dedupe_flags: bool = True

    def knobs(self) -> Dict[str, object]:
        """JSON-ready view of the campaign parameters."""
        return {
            "gpus": self.gpus,
            "topology": self.topology,
            "density": self.density,
            "burstiness": self.burstiness,
            "correlated": self.correlated,
            "mix": dict(self.mix) if self.mix else None,
            "train_every": self.train_every,
            "staleness_ladder": list(self.staleness_ladder),
            "sample_every": self.sample_every,
            "elastic_every": self.elastic_every,
            "elastic_epochs": self.elastic_epochs,
            "serve_every": self.serve_every,
            "serve_scenario": self.serve_scenario,
            "broken_policy": self.policy_factory is not None,
            "dedupe_flags": self.dedupe_flags,
        }


@dataclass
class SeedResult:
    """One seed's verdict."""

    seed: int
    events: int
    outcome: str  # "ok" | "crash-abort" | "violation"
    violations: List[Violation] = field(default_factory=list)
    total_time: float = 0.0
    plan: Optional[FaultPlan] = None

    @property
    def passed(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (the plan itself is saved separately)."""
        return {
            "seed": self.seed,
            "events": self.events,
            "outcome": self.outcome,
            "violations": [v.as_dict() for v in self.violations],
        }


@dataclass
class SoakReport:
    """The campaign's verdict, exportable via ``repro.obs``."""

    results: List[SeedResult]
    config: Dict[str, object]

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> List[SeedResult]:
        return [r for r in self.results if not r.passed]

    def time_quantiles(self) -> Dict[str, float]:
        """p50/p90/p99 of per-seed simulated run time (seconds).

        Fed through the deterministic
        :class:`~repro.obs.quantile.QuantileDigest`, so the numbers are
        reproducible for a given seed range.  Empty campaigns report
        zeros.
        """
        from repro.obs.quantile import QuantileDigest

        digest = QuantileDigest()
        for r in self.results:
            digest.observe(float(r.total_time))
        return digest.quantiles()

    def as_dict(self) -> Dict[str, object]:
        """The exportable campaign summary (see ``repro.obs``)."""
        by_oracle: Dict[str, int] = {name: 0 for name in ORACLES}
        outcomes: Dict[str, int] = {}
        for r in self.results:
            outcomes[r.outcome] = outcomes.get(r.outcome, 0) + 1
            for v in r.violations:
                by_oracle[v.oracle] = by_oracle.get(v.oracle, 0) + 1
        return {
            "seeds": len(self.results),
            "passed": sum(1 for r in self.results if r.passed),
            "failed": len(self.failures),
            "outcomes": dict(sorted(outcomes.items())),
            "total_time_quantiles": self.time_quantiles(),
            "violations_by_oracle": {
                k: v for k, v in by_oracle.items() if v
            },
            "failures": [r.as_dict() for r in self.failures],
            "config": self.config,
        }

    def summary(self) -> str:
        """A terminal-friendly few-line verdict."""
        d = self.as_dict()
        q = d["total_time_quantiles"]
        lines = [
            f"chaos soak: {d['passed']}/{d['seeds']} seeds passed "
            f"({d['outcomes']})",
            f"  run time: p50={q['p50'] * 1e6:.3f} "
            f"p90={q['p90'] * 1e6:.3f} p99={q['p99'] * 1e6:.3f} us",
        ]
        if d["violations_by_oracle"]:
            lines.append(f"  violations: {d['violations_by_oracle']}")
        for r in self.failures[:10]:
            worst = ", ".join(sorted({v.oracle for v in r.violations}))
            lines.append(
                f"  seed {r.seed}: {len(r.violations)} violation(s) "
                f"[{worst}] over {r.events} fault event(s)"
            )
        return "\n".join(lines)


class SoakRunner:
    """Executes chaos campaigns against one fixed workload."""

    def __init__(self, config: Optional[SoakConfig] = None) -> None:
        self.config = config if config is not None else SoakConfig()
        cfg = self.config
        self.topology = _resolve_topology(cfg.topology, cfg.gpus)
        g = rmat(cfg.num_vertices, cfg.num_edges, seed=cfg.graph_seed)
        part = partition(g, cfg.gpus, seed=cfg.partition_seed)
        self.relation = CommRelation(g, part.assignment, cfg.gpus)
        self.plan = SPSTPlanner(self.topology, seed=cfg.partition_seed).plan(
            self.relation
        )
        rng = np.random.default_rng(12)
        feats = rng.standard_normal(
            (g.num_vertices, cfg.feature_dim)
        ).astype(np.float32)
        self.blocks = [
            feats[self.relation.local_vertices[d]] for d in range(cfg.gpus)
        ]
        #: Delivery oracle reference: the compiled allgather's output.
        self.expected = CompiledAllgather(self.relation, self.plan).forward(
            self.blocks
        )
        # Fault-free run: the generator's horizon and the bytes oracle's
        # per-wire cost model both come from here.
        _, baseline = ProtocolRunner(
            self.relation, self.plan, coordination=cfg.coordination
        ).run_data(self.blocks)
        self.baseline = baseline
        bytes_per_unit = cfg.feature_dim * 4  # float32 payload rows
        tuples = list(self.plan.tuples())
        self.num_tuples = len(tuples)
        self.planned_bytes: Dict[str, float] = {}
        for t in tuples:
            size = t.units * bytes_per_unit
            for conn in t.link.connections:
                self.planned_bytes[conn.name] = (
                    self.planned_bytes.get(conn.name, 0.0) + size
                )
        self.generator = FaultPlanGenerator(
            horizon=baseline.total_time,
            devices=range(cfg.gpus),
            connections=sorted(self.topology.connections),
            topology=self.topology,
            density=cfg.density,
            mix=cfg.mix,
            burstiness=cfg.burstiness,
            correlated=cfg.correlated,
            stages=self.plan.num_stages,
        )
        self._ref_losses: Dict[int, List[float]] = {}
        self._train_task = None
        #: Memoised staleness-ladder verdict (fault-independent).
        self._staleness_violations: Optional[List[Violation]] = None
        self._elastic_generator = None
        self._serve_session = None

    # ------------------------------------------------------------------
    def _policy(self):
        if self.config.policy_factory is not None:
            return self.config.policy_factory()
        return DefaultPolicy()

    def _execute(self, plan: FaultPlan) -> RunObservation:
        """One hardened run of ``plan``; never raises."""
        injector = FaultInjector(plan, log=FaultLog())
        tracer = Tracer()
        metrics = MetricsRegistry()
        runner = ProtocolRunner(
            self.relation,
            self.plan,
            coordination=self.config.coordination,
            injector=injector,
            policy=self._policy(),
            tracer=tracer,
            metrics=metrics,
        )
        saved_dedupe = FlagBoard.dedupe
        FlagBoard.dedupe = self.config.dedupe_flags
        gathered = None
        report = None
        error = ""
        detail = ""
        try:
            gathered, report = runner.run_data(self.blocks)
        except (DeviceLostError, UnrecoverableFaultError) as exc:
            error = type(exc).__name__
            detail = str(exc)
        except RuntimeError as exc:  # deadlock / event-budget blowup
            error = type(exc).__name__
            detail = str(exc)
        finally:
            FlagBoard.dedupe = saved_dedupe
        return RunObservation(
            gathered=gathered,
            total_time=report.total_time if report is not None else 0.0,
            transfers=report.transfers if report is not None else 0,
            device_finish=dict(report.device_finish) if report else {},
            stage_finish=dict(report.stage_finish) if report else {},
            log_signature=injector.log.signature(),
            trace_signature=tracer.signature(),
            metrics=metrics.snapshot(),
            error=error,
            error_detail=detail,
        )

    @staticmethod
    def _rerouted(log_signature) -> bool:
        """Did any repair/degrade move traffic off its planned wires?"""
        return any(action in ("repair", "degrade")
                   for _, _, action, _ in log_signature)

    def check_plan(
        self, plan: FaultPlan
    ) -> Tuple[List[Violation], RunObservation]:
        """Score one plan against every protocol-level oracle.

        Runs the plan twice (fresh injector each time): the pair feeds
        the determinism oracle, the first observation feeds the rest.
        """
        obs1 = self._execute(plan)
        obs2 = self._execute(plan)
        violations: List[Violation] = []
        violations += check_liveness(obs1, bool(plan.crashed_devices))
        violations += check_delivery(obs1, self.expected)
        violations += check_bytes(
            obs1,
            self.planned_bytes,
            self.num_tuples,
            rerouted=self._rerouted(obs1.log_signature),
        )
        violations += check_timeline(obs1)
        violations += check_determinism(obs1, obs2)
        return violations, obs1

    # ------------------------------------------------------------------
    # Gradient parity (training-level oracle)
    def _training_task(self):
        if self._train_task is None:
            from repro.gnn import build_gcn  # noqa: F401 (lazy heavy import)

            g = rmat(200, 1400, seed=4)
            rng = np.random.default_rng(0)
            features = rng.standard_normal((g.num_vertices, 6)).astype(
                np.float32
            )
            labels = rng.integers(0, 4, g.num_vertices)
            self._train_task = (g, features, labels)
        return self._train_task

    def _model(self):
        from repro.gnn import build_gcn

        return build_gcn(6, 8, 4, seed=7)

    def _reference_losses(self, epochs: Optional[int] = None) -> List[float]:
        epochs = self.config.train_epochs if epochs is None else int(epochs)
        if epochs not in self._ref_losses:
            from repro.gnn import SingleDeviceTrainer

            g, features, labels = self._training_task()
            trainer = SingleDeviceTrainer(g, self._model(), features, labels)
            self._ref_losses[epochs] = [
                float(trainer.run_epoch().loss) for _ in range(epochs)
            ]
        return self._ref_losses[epochs]

    def check_training(self, plan: FaultPlan) -> List[Violation]:
        """Gradient parity with the single-device reference.

        Chaos that does not kill a device must leave the *math*
        untouched: per-epoch losses match the single-GPU run up to
        float reduction order.  Crash plans are skipped — losing a
        partition legitimately changes the training trajectory.
        """
        if plan.crashed_devices:
            return []
        from repro.gnn import ResilientTrainer

        g, features, labels = self._training_task()
        hook_violations: List[Violation] = []
        clock_state = {"last": -1.0}

        def oracle_hook(epoch: int, loss: float, clock: float) -> None:
            if not np.isfinite(loss):
                hook_violations.append(Violation(
                    "gradient-parity", f"epoch {epoch}: non-finite loss",
                ))
            if clock <= clock_state["last"]:
                hook_violations.append(Violation(
                    "timeline",
                    f"epoch {epoch}: trainer clock went backwards "
                    f"({clock} after {clock_state['last']})",
                ))
            clock_state["last"] = clock

        trainer = ResilientTrainer(
            g, self.topology, self._model(), features, labels,
            fault_plan=plan, oracle_hook=oracle_hook,
        )
        try:
            report = trainer.train(self.config.train_epochs)
        except (DeviceLostError, UnrecoverableFaultError) as exc:
            return [Violation(
                "gradient-parity",
                f"training aborted under a recoverable plan: "
                f"{type(exc).__name__}: {exc}",
            )]
        violations = list(hook_violations)
        ref = self._reference_losses()
        if len(report.losses) != len(ref):
            violations.append(Violation(
                "gradient-parity",
                f"{len(report.losses)} epochs trained, expected {len(ref)}",
            ))
        elif not np.allclose(report.losses, ref, rtol=1e-4, atol=1e-6):
            gaps = [abs(a - b) for a, b in zip(report.losses, ref)]
            violations.append(Violation(
                "gradient-parity",
                f"losses diverged from the single-device reference "
                f"(max gap {max(gaps):.3e})",
            ))
        return violations

    def check_staleness(self) -> List[Violation]:
        """Delayed aggregation against the gradient-parity ladder.

        Trains the soak's training task once per rung of
        ``config.staleness_ladder`` under the delayed-aggregation
        trainer (fault-free: the ladder judges the *scheme*, the fault
        plans judge the protocol) and holds each run to two
        invariants:

        * every rung's per-epoch losses sit within its
          :func:`staleness_tolerance` band of the single-device
          reference — rung 0 is therefore exact parity;
        * degradation is monotone: a rung's worst loss gap never
          *shrinks* below the previous rung's beyond float slack
          (staler aggregates cannot be more accurate).
        """
        from repro.core.baseline_planners import peer_to_peer_plan
        from repro.partition.hierarchical import hierarchical_partition
        from repro.schemes.distgnn import DistGNNTrainer

        ladder = tuple(self.config.staleness_ladder)
        if not ladder:
            return []
        # Fault-independent (and deterministic): sweep once per campaign.
        if self._staleness_violations is not None:
            return list(self._staleness_violations)
        g, features, labels = self._training_task()
        assignment = hierarchical_partition(
            g, self.topology, seed=self.config.partition_seed
        ).assignment
        relation = CommRelation(g, assignment, self.topology.num_devices)
        plan = peer_to_peer_plan(relation, self.topology,
                                 name="distgnn-delayed")
        ref = self._reference_losses()
        violations: List[Violation] = []
        gaps: List[Tuple[int, float]] = []
        for staleness in sorted(ladder):
            trainer = DistGNNTrainer(
                relation, plan, self._model(), features, labels,
                staleness=staleness,
            )
            losses = [
                float(trainer.run_epoch().loss)
                for _ in range(self.config.train_epochs)
            ]
            rtol, atol = staleness_tolerance(staleness)
            gap = max(abs(a - b) for a, b in zip(losses, ref))
            gaps.append((staleness, gap))
            if not np.allclose(losses, ref, rtol=rtol, atol=atol):
                violations.append(Violation(
                    "staleness-parity",
                    f"staleness {staleness}: losses left the tolerance "
                    f"band (max gap {gap:.3e}, rtol {rtol:g}, "
                    f"atol {atol:g})",
                ))
        for (s_lo, gap_lo), (s_hi, gap_hi) in zip(gaps, gaps[1:]):
            if gap_hi + 1e-6 + 0.25 * gap_lo < gap_lo:
                violations.append(Violation(
                    "staleness-parity",
                    f"degradation not monotone: staleness {s_hi} gap "
                    f"{gap_hi:.3e} below staleness {s_lo} gap "
                    f"{gap_lo:.3e}",
                ))
        self._staleness_violations = violations
        return list(violations)

    # ------------------------------------------------------------------
    # Sampled mini-batch soak (per-batch planning + parity oracle)
    def _run_minibatch(self, seed: int):
        """One epoch of sampled training; returns (losses, sources)."""
        from repro.gnn import MiniBatchTrainer
        from repro.sampling import BatchPlanner, NeighborSampler, SeedLoader

        cfg = self.config
        g, features, labels = self._training_task()
        part = partition(g, cfg.gpus, seed=cfg.partition_seed)
        loader = SeedLoader(g, cfg.sample_batch_size, seed=seed)
        sampler = NeighborSampler(g, cfg.sample_fanouts, seed=seed)
        planner = BatchPlanner(g, part.assignment, self.topology)
        trainer = MiniBatchTrainer(
            self._model(), features, labels, sampler, loader, planner
        )
        trainer.train_epoch(0)
        return list(trainer.loss_history), [
            r.plan_source for r in trainer.results
        ]

    def check_minibatch(self, plan: FaultPlan, seed: int) -> List[Violation]:
        """Oracles over one epoch of sampled mini-batch training.

        The sampled stream is seeded from the chaos seed and run twice:

        * **determinism** — both runs must produce bit-identical
          per-batch losses and identical plan-source ladders (cold /
          patched / replanned per batch);
        * **minibatch-parity** — the distributed trainer's per-batch
          losses must match a single-device
          :class:`~repro.gnn.minibatch.MiniBatchOracle` replaying the
          same batch stream, which end-to-end checks that every
          patched or replanned batch plan still delivers the right
          rows.

        Crash plans are skipped like the other training oracles:
        losing a partition legitimately changes the trajectory.
        """
        if plan.crashed_devices:
            return []
        from repro.gnn import MiniBatchOracle

        losses1, sources1 = self._run_minibatch(seed)
        losses2, sources2 = self._run_minibatch(seed)
        violations: List[Violation] = []
        if losses1 != losses2:
            violations.append(Violation(
                "determinism",
                "sampled runs diverged in per-batch losses",
            ))
        if sources1 != sources2:
            violations.append(Violation(
                "determinism",
                f"sampled runs diverged in plan sources "
                f"({sources1} vs {sources2})",
            ))

        cfg = self.config
        g, features, labels = self._training_task()
        oracle = MiniBatchOracle(self._model(), features, labels)
        from repro.sampling import NeighborSampler, SeedLoader

        loader = SeedLoader(g, cfg.sample_batch_size, seed=seed)
        sampler = NeighborSampler(g, cfg.sample_fanouts, seed=seed)
        for i, seeds in enumerate(loader.batches(0)):
            oracle.run_batch(sampler.sample(seeds, batch_index=i))
        if len(oracle.loss_history) != len(losses1):
            violations.append(Violation(
                "minibatch-parity",
                f"{len(losses1)} batch(es) trained, oracle ran "
                f"{len(oracle.loss_history)}",
            ))
        elif not np.allclose(losses1, oracle.loss_history,
                             rtol=1e-4, atol=1e-6):
            gaps = [abs(a - b)
                    for a, b in zip(losses1, oracle.loss_history)]
            violations.append(Violation(
                "minibatch-parity",
                f"sampled losses diverged from the single-device "
                f"oracle (max gap {max(gaps):.3e})",
            ))
        return violations

    # ------------------------------------------------------------------
    # Mixed elastic soak (faults + randomized grow/shrink)
    def _elastic_schedule(self, seed: int):
        if self._elastic_generator is None:
            from repro.chaos.generator import ElasticScheduleGenerator

            cfg = self.config
            self._elastic_generator = ElasticScheduleGenerator(
                num_devices=cfg.gpus,
                epochs=cfg.elastic_epochs,
                min_devices=min(cfg.elastic_min_devices, cfg.gpus),
                density=cfg.elastic_density,
            )
        return self._elastic_generator.sample(seed)

    def _run_elastic(self, plan: FaultPlan, schedule):
        """One elastic training run under ``plan``; never raises."""
        from repro.elastic import ElasticPolicy, ElasticSpecError
        from repro.elastic.controller import ElasticController

        g, features, labels = self._training_task()
        trainer = ElasticController(
            g, self.topology, self._model(), features, labels,
            elastic=ElasticPolicy(
                min_devices=min(self.config.elastic_min_devices,
                                self.config.gpus),
            ),
            fault_plan=plan,
        )
        try:
            report = trainer.train_with_schedule(
                self.config.elastic_epochs, schedule
            )
        except (DeviceLostError, UnrecoverableFaultError,
                ElasticSpecError) as exc:
            return None, [Violation(
                "liveness",
                f"elastic run aborted under a recoverable plan: "
                f"{type(exc).__name__}: {exc}",
            )]
        return trainer, report

    def check_elastic(self, plan: FaultPlan, seed: int) -> List[Violation]:
        """Oracles over a run mixing ``plan`` with random grow/shrink.

        The same seeded elastic schedule is interleaved with the fault
        plan and the run is held to three invariants:

        * **determinism** — a second identical run produces the same
          losses, the same final clock and the same fault-log
          signature (handoffs included);
        * **gradient-parity** — planned transitions keep the live
          weights, so the loss trajectory still matches the
          single-device reference;
        * **delivery** — the post-transition plan still delivers every
          device's full feature matrix byte-exactly.

        Crash plans are skipped for the same reason
        :meth:`check_training` skips them: losing a partition
        legitimately changes the trajectory (and a crashed device is
        not a legal grow target).
        """
        if plan.crashed_devices:
            return []
        schedule = self._elastic_schedule(seed)
        first = self._run_elastic(plan, schedule)
        if first[0] is None:
            return first[1]
        second = self._run_elastic(plan, schedule)
        if second[0] is None:
            return second[1]
        trainer, report = first
        trainer2, report2 = second
        violations: List[Violation] = []

        if list(report.losses) != list(report2.losses):
            violations.append(Violation(
                "determinism", "elastic runs diverged in per-epoch losses",
            ))
        if trainer.clock != trainer2.clock:
            violations.append(Violation(
                "determinism",
                f"elastic runs diverged in simulated time "
                f"({trainer.clock} vs {trainer2.clock})",
            ))
        if trainer.log.signature() != trainer2.log.signature():
            violations.append(Violation(
                "determinism", "elastic runs diverged in fault-log records",
            ))

        if len(trainer.transitions) != len(schedule):
            violations.append(Violation(
                "timeline",
                f"{len(trainer.transitions)} transition(s) ran, schedule "
                f"had {len(schedule)}",
            ))
        for t in trainer.transitions:
            if t.downtime_seconds <= 0:
                violations.append(Violation(
                    "timeline",
                    f"{t.kind} at epoch {t.epoch} took no simulated time",
                ))

        ref = self._reference_losses(self.config.elastic_epochs)
        if len(report.losses) != len(ref):
            violations.append(Violation(
                "gradient-parity",
                f"{len(report.losses)} epochs trained, expected {len(ref)}",
            ))
        elif not np.allclose(report.losses, ref, rtol=1e-4, atol=1e-6):
            gaps = [abs(a - b) for a, b in zip(report.losses, ref)]
            violations.append(Violation(
                "gradient-parity",
                f"elastic losses diverged from the single-device "
                f"reference (max gap {max(gaps):.3e})",
            ))

        # Delivery on the final plan: every device still receives its
        # full feature matrix byte-exactly after all the handoffs.
        features = self._training_task()[1]
        relation, final_plan = trainer.relation, trainer.plan
        blocks = [
            features[relation.local_vertices[d]]
            for d in range(relation.num_devices)
        ]
        gathered = CompiledAllgather(relation, final_plan).forward(blocks)
        for d in range(relation.num_devices):
            expected = features[relation.local_graph(d).global_ids]
            if not np.array_equal(gathered[d], expected):
                violations.append(Violation(
                    "delivery",
                    f"device {d}: post-transition plan delivered wrong "
                    f"bytes",
                ))
                break
        return violations

    # ------------------------------------------------------------------
    # Serving soak (online-inference oracles under the same fault plan)
    def _serving_session(self):
        """The shared serving workload (scenario built once, reused)."""
        if self._serve_session is None:
            from repro.serve import build_scenario

            cfg = self.config
            self._serve_session = build_scenario(
                cfg.serve_scenario,
                gpus=cfg.gpus,
                topology=cfg.topology,
                horizon_scale=cfg.serve_horizon_scale,
            )
        return self._serve_session

    def check_serve(self, plan: FaultPlan, seed: int) -> List[Violation]:
        """Serving oracles over one campaign run under ``plan``.

        The scaled-down scenario campaign runs twice with the same seed
        and fault plan: the pair must produce bit-identical report
        signatures (determinism), and the first report must satisfy the
        serve-accounting and serve-deadline invariants — typed outcomes
        only, even while the injector is killing wires and devices.
        """
        session = self._serving_session()
        first = session.run(seed=seed, fault_plan=plan)
        second = session.run(seed=seed, fault_plan=plan)
        violations: List[Violation] = []
        if first.signature() != second.signature():
            violations.append(Violation(
                "determinism",
                "serving campaign reports diverged across identical runs",
            ))
        violations += check_serve_accounting(first)
        violations += check_serve_deadline(first)
        return violations

    # ------------------------------------------------------------------
    def run_seed(
        self,
        seed: int,
        train: bool = False,
        elastic: bool = False,
        serve: bool = False,
        sample: bool = False,
    ) -> SeedResult:
        """Generate, execute and score one seed."""
        plan = self.generator.sample(seed)
        violations, obs = self.check_plan(plan)
        if train:
            violations += self.check_training(plan)
            violations += self.check_staleness()
        if sample:
            violations += self.check_minibatch(plan, seed)
        if elastic:
            violations += self.check_elastic(plan, seed)
        if serve:
            violations += self.check_serve(plan, seed)
        if violations:
            outcome = "violation"
        elif obs.error == "DeviceLostError":
            outcome = "crash-abort"
        else:
            outcome = "ok"
        return SeedResult(
            seed=seed,
            events=len(plan),
            outcome=outcome,
            violations=violations,
            total_time=obs.total_time,
            plan=plan,
        )

    def run(self, seeds: int, start_seed: int = 0) -> SoakReport:
        """The campaign: ``seeds`` consecutive seeds from ``start_seed``."""
        cfg = self.config
        results = []
        for i in range(seeds):
            train = cfg.train_every > 0 and i % cfg.train_every == 0
            sample = cfg.sample_every > 0 and i % cfg.sample_every == 0
            elastic = cfg.elastic_every > 0 and i % cfg.elastic_every == 0
            serve = cfg.serve_every > 0 and i % cfg.serve_every == 0
            results.append(
                self.run_seed(
                    start_seed + i, train=train, elastic=elastic,
                    serve=serve, sample=sample,
                )
            )
        return SoakReport(results=results, config=cfg.knobs())
