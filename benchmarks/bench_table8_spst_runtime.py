"""Table 8: running time of the SPST planning algorithm.

Paper (single-thread seconds at full scale): planning finishes in
seconds; time grows with graph size/density and approximately linearly
with the GPU count.  Our default planner runs in class-chunked mode
(DESIGN.md), so absolute numbers are smaller; the growth shapes are the
claims checked here.  A verbatim per-vertex data point is included for
the smallest graph as a faithfulness anchor.
"""

import time

import pytest

from repro.core.spst import SPSTPlanner

from benchmarks.conftest import get_workload, shared_topology, write_table

DATASETS = ["reddit", "com-orkut", "web-google", "wiki-talk"]
GPU_COUNTS = (2, 4, 8, 16)
PAPER = {  # seconds at paper scale, 16 GPUs
    "reddit": 9.91, "com-orkut": 110, "web-google": 6.76, "wiki-talk": 3.14,
}


def plan_seconds(dataset: str, num_gpus: int, granularity="chunk") -> float:
    w = get_workload(dataset, "gcn", num_gpus)
    planner = SPSTPlanner(
        shared_topology(num_gpus), granularity=granularity, seed=0
    )
    start = time.perf_counter()
    planner.plan(w.relation)
    return time.perf_counter() - start


def test_table8_spst_runtime(benchmark):
    times = {}
    for dataset in DATASETS:
        for n in GPU_COUNTS:
            times[(dataset, n)] = plan_seconds(dataset, n)
    rows = [
        [n] + [f"{times[(d, n)]:.3f}" for d in DATASETS] for n in GPU_COUNTS
    ]
    write_table(
        "table8_spst_runtime",
        "Table 8: SPST planning time (s), class-chunked, single thread",
        ["GPUs"] + DATASETS,
        rows,
        notes=(
            "Paper plans per vertex at 100x graph scale (e.g. 110 s for "
            "Com-Orkut @ 16 GPUs); the library's default chunked planner "
            "keeps the same greedy algorithm at tractable cost."
        ),
    )

    # Growth shapes: more GPUs => more planning time, for every graph.
    for dataset in DATASETS:
        assert times[(dataset, 16)] > times[(dataset, 2)], dataset
    # Densest/largest multicast structure (com-orkut) is the slowest to
    # plan, as in the paper.
    for n in (8, 16):
        assert times[("com-orkut", n)] == max(
            times[(d, n)] for d in DATASETS
        )

    # Verbatim per-vertex planning still completes on the small graph.
    exact = plan_seconds("web-google", 8, granularity="vertex")
    assert exact > times[("web-google", 8)]

    benchmark.pedantic(
        lambda: plan_seconds("web-google", 8), rounds=3, iterations=1
    )
