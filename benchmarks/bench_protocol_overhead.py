"""Protocol overhead: flag/control costs on top of raw transfers (§6.1).

Compares three views of one graphAllgather:

* the *cost model* estimate (what SPST optimises),
* the *transfer-level* simulation (flows + stage dependencies),
* the *protocol-level* simulation (master handshake, ready/done flag
  polls, per-transfer processes).

The paper's §6.1 design goal is that coordination stays cheap; here the
decentralized protocol's overhead over raw transfers is measured
per dataset, and the centralized alternative's extra barrier cost with it.
"""

import pytest

from repro.runtime import ProtocolRunner
from repro.simulator.executor import PlanExecutor

from benchmarks.conftest import get_workload, write_table

DATASETS = ["reddit", "com-orkut", "web-google", "wiki-talk"]


def three_views(dataset):
    w = get_workload(dataset, "gcn", 8)
    bpu = w.boundary_bytes()[0]
    plan = w.spst_plan
    estimate = plan.estimated_cost(bpu)
    transfer = PlanExecutor(w.topology).execute(plan, bpu).total_time
    decentralized = ProtocolRunner(
        w.relation, plan, coordination="decentralized"
    ).run_timed(bpu).total_time
    centralized = ProtocolRunner(
        w.relation, plan, coordination="centralized"
    ).run_timed(bpu).total_time
    return estimate, transfer, decentralized, centralized


def test_protocol_overhead(benchmark):
    rows = []
    measured = {}
    for dataset in DATASETS:
        est, transfer, dec, cen = three_views(dataset)
        measured[dataset] = (est, transfer, dec, cen)
        rows.append([
            dataset,
            f"{est * 1e6:.2f}", f"{transfer * 1e6:.2f}",
            f"{dec * 1e6:.2f}", f"{cen * 1e6:.2f}",
            f"{dec / transfer - 1:.0%}",
        ])
    write_table(
        "protocol_overhead",
        "Protocol overhead: one allgather (us), 8 GPUs, DGCL plan",
        ["Dataset", "Cost model", "Transfers", "Decentralized", "Centralized",
         "flag overhead"],
        rows,
        notes="Decentralized = §6.1 ready/done protocol; centralized adds "
              "a master barrier per stage.  On uniform runs the two tie at "
              "twin scale; the decentralized win is straggler isolation "
              "(see tests/test_runtime.py).",
    )

    for dataset, (est, transfer, dec, cen) in measured.items():
        # The protocol can only add overhead to raw transfers...
        assert dec >= transfer * 0.98, dataset
        # ...but the decentralized design keeps it modest.
        assert dec < 2.0 * transfer, dataset
        # At twin scale the barrier cost is a wash on *uniform* runs
        # (early decentralized starters contend with bottleneck stages);
        # the decentralized win is straggler isolation, asserted in
        # tests/test_runtime.py::test_straggler_isolation.
        assert cen == pytest.approx(dec, rel=0.15), dataset
        # And the planner's estimate tracks the executed time.
        assert est == pytest.approx(transfer, rel=0.6), dataset

    w = get_workload("web-google", "gcn", 8)
    runner = ProtocolRunner(w.relation, w.spst_plan)
    benchmark.pedantic(lambda: runner.run_timed(1024), rounds=3, iterations=1)
