"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark module regenerates one table or figure of the paper
(see DESIGN.md §4).  Results are written as formatted text tables under
``benchmarks/results/`` and also printed, and each module asserts the
*shape* claims of its experiment — who wins, roughly by how much — so a
regression in the planner or simulator fails the suite loudly.

Workloads (graph + partition + plans) are cached per process and the
partition assignments per machine (see repro.cache), so the first run
pays a few minutes of partitioning and subsequent runs are fast.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Sequence

import pytest

from repro.baselines import Workload
from repro.topology import topology_for_gpu_count
from repro.topology.topology import Topology

RESULTS_DIR = Path(__file__).parent / "results"

_TOPOLOGIES: Dict[int, Topology] = {}
_WORKLOADS: Dict[tuple, Workload] = {}


def shared_topology(num_gpus: int) -> Topology:
    """One topology instance per GPU count (keeps cache keys stable)."""
    if num_gpus not in _TOPOLOGIES:
        _TOPOLOGIES[num_gpus] = topology_for_gpu_count(num_gpus)
    return _TOPOLOGIES[num_gpus]


def get_workload(dataset: str, model: str, num_gpus: int, **kwargs) -> Workload:
    key = (dataset, model, num_gpus, tuple(sorted(kwargs.items())))
    if key not in _WORKLOADS:
        _WORKLOADS[key] = Workload(
            dataset, model, shared_topology(num_gpus), **kwargs
        )
    return _WORKLOADS[key]


def write_table(
    name: str,
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: str = "",
) -> str:
    """Format, save and print one reproduced table."""
    rows = [list(map(str, row)) for row in rows]
    header = list(map(str, header))
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]

    def fmt(row):
        return "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()

    lines = [title, "=" * len(title), "", fmt(header),
             fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in rows]
    if notes:
        lines += ["", notes]
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


def ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
