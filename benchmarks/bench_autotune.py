"""Auto-tuner benchmark: pick quality and plan-cache speedup.

Two claims, recorded in ``BENCH_autotune.json``:

* **pick quality** — on the Table-5 style workload grid the tuner's
  pick is never worse than the best fixed strategy (it prices every
  candidate with the same staged cost model, so this is exact), and the
  report quantifies how much the *worst* fixed choice would have cost;
* **cache speedup** — loading the stored plan from a warm
  :class:`~repro.autotune.cache.PlanCache` is several times faster than
  re-running SPST planning from scratch on a Table 8 benchmark cell
  (wiki-talk at 16 GPUs, the largest twin planning job in the tier-1
  grid).  The exact multiple is wall-clock and machine-dependent
  (~5-18x observed), so the in-test floor is a loose sanity bound and
  the trend gates through ``compare.py``'s ``plan_cache.speedup`` wall
  metric.
"""

import tempfile
import time

from repro.autotune import AutoTuner, PlanCache, cache_key
from repro.baselines import evaluate_scheme
from repro.core.spst import SPSTPlanner

from benchmarks.conftest import get_workload, shared_topology, write_table
from benchmarks.emit_json import emit_json

DATASETS = ["web-google", "wiki-talk"]
GPUS = 8
FIXED_SCHEMES = ("dgcl", "dgcl-cache", "peer-to-peer", "swap", "replication")


def tune_cell(dataset: str):
    """Tune one workload cell; returns (report, fixed-scheme costs)."""
    w = get_workload(dataset, "gcn", GPUS)
    tuner = AutoTuner(w.graph, w.topology, dataset=dataset)
    report = tuner.tune()
    fixed = {}
    for scheme in FIXED_SCHEMES:
        r = evaluate_scheme(w, scheme=scheme)
        fixed[scheme] = r.epoch_time if r.ok else float("inf")
    return report, fixed


CACHE_DATASET = "wiki-talk"
CACHE_GPUS = 16


def cache_speedup():
    """(cold planning seconds, warm cache-load seconds) on Table 8's graph."""
    w = get_workload(CACHE_DATASET, "gcn", CACHE_GPUS)
    topology = shared_topology(CACHE_GPUS)
    relation = w.relation  # materialise outside the timed region

    start = time.perf_counter()
    plan = SPSTPlanner(topology, granularity="chunk", seed=0).plan(relation)
    cold = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        cache = PlanCache(tmp)
        key = cache_key(w.graph, w.partition.assignment, topology,
                        {"strategy": "spst", "chunks_per_class": 4, "seed": 0})
        cache.put(key, plan)
        start = time.perf_counter()
        warm_plan = cache.get(key, topology)
        warm = time.perf_counter() - start
        assert warm_plan is not None and cache.stats.hits == 1
    return cold, warm


def test_autotune_benchmark():
    cells = {d: tune_cell(d) for d in DATASETS}
    cold, warm = cache_speedup()
    speedup = cold / warm

    rows = []
    payload_cells = {}
    for dataset, (report, fixed) in cells.items():
        pick_cost = report.best.cost
        best_fixed = min(fixed.values())
        worst_fixed = max(v for v in fixed.values() if v != float("inf"))
        rows.append([
            dataset, report.candidate.label(),
            f"{pick_cost * 1e3:.3f}", f"{best_fixed * 1e3:.3f}",
            f"{worst_fixed * 1e3:.3f}", f"{worst_fixed / pick_cost:.2f}x",
        ])
        payload_cells[dataset] = {
            "picked": report.candidate.config(),
            "picked_epoch_seconds": pick_cost,
            "best_fixed_epoch_seconds": best_fixed,
            "worst_fixed_epoch_seconds": worst_fixed,
            "evaluations": report.evaluations,
            "driver": report.driver,
            "fixed": {k: (None if v == float("inf") else v)
                      for k, v in fixed.items()},
        }

    write_table(
        "autotune",
        f"Auto-tuner pick quality (gcn, {GPUS} GPUs) and plan-cache speedup",
        ["dataset", "pick", "pick(ms)", "best fixed(ms)",
         "worst fixed(ms)", "worst/pick"],
        rows,
        notes=(
            f"Plan cache: cold SPST planning {cold:.3f}s vs warm load "
            f"{warm * 1e3:.1f}ms on {CACHE_DATASET} @ {CACHE_GPUS} GPUs "
            f"({speedup:.0f}x)."
        ),
    )
    emit_json("autotune", {
        "gpus": GPUS,
        "model": "gcn",
        "cells": payload_cells,
        "plan_cache": {
            "dataset": CACHE_DATASET,
            "gpus": CACHE_GPUS,
            "cold_plan_seconds": cold,
            "warm_load_seconds": warm,
            "speedup": speedup,
        },
    })

    # The tuner prices candidates with the exact same cost model the
    # fixed evaluations use, so its pick can never lose to them.
    for dataset, (report, fixed) in cells.items():
        assert report.best.cost <= min(fixed.values()) + 1e-12, dataset
    # Acceptance: warm plan loading clearly beats cold planning.  Kept
    # loose on purpose — this is wall clock, and cold planning time
    # varies ~3x across machines; compare.py gates the trend.
    assert speedup >= 3.0, f"plan cache speedup only {speedup:.1f}x"
