"""Table 5: DGCL vs DGCL-R (cross-machine replication) on 16 GPUs.

Paper (ms): Web-Google GCN 54.0 vs 26.7 (DGCL-R wins big — sparse graph,
cheap replicas, expensive IB), Reddit GCN 88.4 vs 86.4 (near tie),
Reddit GIN 53.1 vs 71.9 (DGCL-R loses — GIN recomputation is expensive).
The reproduced shape: DGCL-R wins when communication dominates
(simple model / sparse graph) and loses when the replicated
computation outweighs the saved IB traffic (GIN on Reddit).
"""

import pytest

from repro.baselines import evaluate_dgcl_r, evaluate_scheme

from benchmarks.conftest import get_workload, ms, write_table

CELLS = [("web-google", "gcn"), ("web-google", "gin"),
         ("reddit", "gcn"), ("reddit", "gin")]
PAPER = {
    ("web-google", "gcn"): (54.0, 26.7),
    ("web-google", "gin"): (94.8, 107.0),
    ("reddit", "gcn"): (88.4, 86.4),
    ("reddit", "gin"): (53.1, 71.9),
}


def collect():
    results = {}
    for dataset, model in CELLS:
        w = get_workload(dataset, model, 16)
        results[(dataset, model, "dgcl")] = evaluate_scheme(w, scheme="dgcl")
        results[(dataset, model, "dgcl-r")] = evaluate_dgcl_r(w)
    return results


def test_table5_dgcl_r(benchmark):
    results = collect()
    rows = []
    for dataset, model in CELLS:
        a = results[(dataset, model, "dgcl")]
        b = results[(dataset, model, "dgcl-r")]
        p = PAPER[(dataset, model)]
        rows.append([
            dataset, model,
            ms(a.epoch_time), ms(b.epoch_time),
            f"{p[0]:.1f}", f"{p[1]:.1f}",
        ])
    write_table(
        "table5_dgcl_r",
        "Table 5: per-epoch time (ms) on 16 GPUs — DGCL vs DGCL-R",
        ["Dataset", "Model", "DGCL", "DGCL-R", "paper DGCL", "paper DGCL-R"],
        rows,
        notes="DGCL-R replicates across machines and plans only inside each.",
    )

    # DGCL-R eliminates all cross-machine communication...
    for dataset, model in CELLS:
        b = results[(dataset, model, "dgcl-r")]
        a = results[(dataset, model, "dgcl")]
        assert b.ok and a.ok
        assert b.comm_time < a.comm_time, (dataset, model)

    # ...and wins decisively where communication dominated (GCN on the
    # sparse graph over slow IB), the paper's headline for this table.
    a = results[("web-google", "gcn", "dgcl")]
    b = results[("web-google", "gcn", "dgcl-r")]
    assert b.epoch_time < 0.8 * a.epoch_time

    # The replica recomputation penalty exists: DGCL-R's compute time is
    # strictly larger in every cell.
    for dataset, model in CELLS:
        assert (
            results[(dataset, model, "dgcl-r")].compute_time
            > results[(dataset, model, "dgcl")].compute_time
        )

    # For compute-heavy GIN on dense Reddit the trade-off narrows to
    # (paper: reverses) — DGCL-R must not win big there.
    a = results[("reddit", "gin", "dgcl")]
    b = results[("reddit", "gin", "dgcl-r")]
    assert b.epoch_time > 0.85 * a.epoch_time

    w = get_workload("web-google", "gcn", 16)
    benchmark.pedantic(lambda: evaluate_dgcl_r(w), rounds=1, iterations=1)
