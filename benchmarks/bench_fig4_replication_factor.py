"""Figure 4: replication factor vs GPU count and GNN depth.

Paper: the factor grows with both axes; for the dense Reddit graph the
2-hop closure already covers almost the whole graph (so 2-hop and 3-hop
coincide and the factor approaches the GPU count); for sparse
Web-Google a 3-layer GNN still exceeds factor 3 at 16 GPUs — the
argument that replication cannot support deep GNNs.
"""

import pytest

from repro.partition.replication import replication_factor

from benchmarks.conftest import get_workload, write_table

GPU_COUNTS = (2, 4, 8, 16)
HOPS = (1, 2, 3)


def factors_for(dataset):
    out = {}
    for n in GPU_COUNTS:
        w = get_workload(dataset, "gcn", n)
        assignment = w.partition.assignment
        for h in HOPS:
            out[(n, h)] = replication_factor(w.graph, assignment, h)
    return out


@pytest.mark.parametrize("dataset", ["web-google", "reddit"])
def test_fig4_replication_factor(dataset, benchmark):
    factors = factors_for(dataset)
    rows = [
        [n] + [f"{factors[(n, h)]:.2f}" for h in HOPS] for n in GPU_COUNTS
    ]
    write_table(
        f"fig4_replication_factor_{dataset}",
        f"Figure 4 ({dataset}): replication factor by GPU count and hops",
        ["GPUs", "1-hop", "2-hop", "3-hop"],
        rows,
    )

    # Monotone in both axes.
    for h in HOPS:
        series = [factors[(n, h)] for n in GPU_COUNTS]
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:])), (h, series)
    for n in GPU_COUNTS:
        series = [factors[(n, h)] for h in HOPS]
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:])), (n, series)

    if dataset == "reddit":
        # Dense: 2-hop closure ~ whole graph; 3-hop adds almost nothing,
        # and the factor approaches the GPU count.
        assert factors[(8, 3)] - factors[(8, 2)] < 0.15 * factors[(8, 2)]
        assert factors[(16, 2)] > 10
    else:
        # Sparse: deep GNNs still replicate heavily at 16 GPUs.
        assert factors[(16, 3)] > 3.0
        # but far from the dense blow-up
        assert factors[(8, 2)] < 4.0

    w = get_workload(dataset, "gcn", 8)
    benchmark.pedantic(
        lambda: replication_factor(w.graph, w.partition.assignment, 2),
        rounds=3, iterations=1,
    )
