"""Table 1: the speed of common communication links.

Paper values (GB/s): NV2 48.35, NV1 24.22, PCIe 11.13, QPI 9.56,
IB 6.37, Ethernet 3.12.  Here we *measure* the simulated links by
timing a large point-to-point transfer over each kind, confirming the
simulator delivers the configured Table-1 bandwidths.
"""

import pytest

from repro.simulator.network import Flow, NetworkSimulator
from repro.topology.links import BANDWIDTH_GBPS, LinkKind, PhysicalConnection

from benchmarks.conftest import write_table

KINDS = [
    LinkKind.NV2,
    LinkKind.NV1,
    LinkKind.PCIE,
    LinkKind.QPI,
    LinkKind.IB,
    LinkKind.ETHERNET,
]

TRANSFER_BYTES = 64e6


def measure_bandwidth(kind: LinkKind) -> float:
    conn = PhysicalConnection(f"bench:{kind.value}", kind)
    sim = NetworkSimulator()
    t = sim.makespan([Flow((conn,), TRANSFER_BYTES)])
    return TRANSFER_BYTES / t / 1e9


def test_table1_link_speeds(benchmark):
    measured = {kind: measure_bandwidth(kind) for kind in KINDS}
    write_table(
        "table1_link_speeds",
        "Table 1: measured speed (GB/s) of common communication links",
        ["Type"] + [k.value for k in KINDS],
        [
            ["paper"] + [f"{BANDWIDTH_GBPS[k]:.2f}" for k in KINDS],
            ["measured"] + [f"{measured[k]:.2f}" for k in KINDS],
        ],
        notes="One 64 MB point-to-point transfer per link kind.",
    )
    for kind in KINDS:
        assert measured[kind] == pytest.approx(BANDWIDTH_GBPS[kind], rel=0.01)
    # ordering claim: NVLink >> PCIe > QPI > IB > Ethernet
    speeds = [measured[k] for k in KINDS]
    assert speeds == sorted(speeds, reverse=True)

    benchmark(measure_bandwidth, LinkKind.NV2)
