"""Ablations of DGCL's design choices (DESIGN.md §5).

Not paper tables, but each isolates one mechanism the paper argues for:

* decentralized vs centralized coordination (§6.1),
* chunked planning granularity vs a single tree per multicast class,
* data packing (§6.2) as a bandwidth-efficiency factor,
* hierarchical vs flat partitioning on two machines (§4.1).
"""

import numpy as np
import pytest

from repro.core.baseline_planners import static_tree_plan
from repro.core.relation import CommRelation
from repro.core.spst import SPSTPlanner
from repro.partition.metis import edge_cut, partition
from repro.simulator.executor import PlanExecutor

from benchmarks.conftest import get_workload, ms, shared_topology, write_table


def test_ablation_coordination(benchmark):
    """Decentralized flags beat a master-coordinated stage barrier."""
    w = get_workload("web-google", "gcn", 8)
    bpu = w.boundary_bytes()[0]
    rows = []
    times = {}
    for mode in ("decentralized", "centralized"):
        executor = PlanExecutor(w.topology, coordination=mode)
        times[mode] = executor.execute(w.spst_plan, bpu).total_time
        rows.append([mode, ms(times[mode])])
    write_table(
        "ablation_coordination",
        "Ablation: coordination protocol, one allgather (web-google, 8 GPUs)",
        ["Coordination", "Time (ms)"],
        rows,
    )
    assert times["decentralized"] < times["centralized"]

    executor = PlanExecutor(w.topology)
    benchmark.pedantic(lambda: executor.execute(w.spst_plan, bpu),
                       rounds=3, iterations=1)


def test_ablation_chunk_granularity(benchmark):
    """More chunks per class = more load-balancing freedom = lower cost."""
    w = get_workload("web-google", "gcn", 8)
    bpu = w.boundary_bytes()[0]
    rows = []
    costs = {}
    for chunks in (1, 2, 4, 8):
        plan = SPSTPlanner(w.topology, chunks_per_class=chunks, seed=0).plan(
            w.relation
        )
        costs[chunks] = plan.estimated_cost(bpu)
        rows.append([chunks, f"{costs[chunks] * 1e6:.2f}"])
    write_table(
        "ablation_chunk_granularity",
        "Ablation: SPST chunks per multicast class (estimated cost, us)",
        ["Chunks/class", "Estimated cost (us)"],
        rows,
    )
    assert costs[8] <= costs[1] * 1.001

    benchmark.pedantic(
        lambda: SPSTPlanner(w.topology, chunks_per_class=4, seed=0).plan(
            w.relation
        ),
        rounds=1, iterations=1,
    )


def test_ablation_packing(benchmark):
    """§6.2: 16-byte packing models as a bandwidth-efficiency factor."""
    w = get_workload("web-google", "gcn", 8)
    bpu = w.boundary_bytes()[0]
    packed = PlanExecutor(w.topology, packing_efficiency=1.0).execute(
        w.spst_plan, bpu
    ).total_time
    unpacked = PlanExecutor(w.topology, packing_efficiency=0.65).execute(
        w.spst_plan, bpu
    ).total_time
    write_table(
        "ablation_packing",
        "Ablation: data packing (one allgather, web-google, 8 GPUs)",
        ["Variant", "Time (ms)"],
        [["packed (16 B loads)", ms(packed)],
         ["unpacked", ms(unpacked)]],
    )
    assert packed < unpacked

    executor = PlanExecutor(w.topology, packing_efficiency=0.65)
    benchmark.pedantic(lambda: executor.execute(w.spst_plan, bpu),
                       rounds=3, iterations=1)


def test_ablation_static_trees(benchmark):
    """Load-aware SPST vs contention-blind static multicast trees."""
    rows = []
    gaps = {}
    for dataset in ("web-google", "com-orkut"):
        w = get_workload(dataset, "gcn", 8)
        bpu = w.boundary_bytes()[0]
        executor = PlanExecutor(w.topology)
        static = static_tree_plan(w.relation, w.topology)
        t_static = executor.execute(static, bpu).total_time
        t_spst = executor.execute(w.spst_plan, bpu).total_time
        gaps[dataset] = t_static / t_spst
        rows.append([dataset, ms(t_spst), ms(t_static),
                     f"{gaps[dataset]:.2f}x"])
    write_table(
        "ablation_static_trees",
        "Ablation: SPST vs static (contention-blind) trees, one allgather",
        ["Dataset", "SPST (ms)", "Static trees (ms)", "static/SPST"],
        rows,
        notes="Static trees relay and fuse but cannot see load: the gap "
              "isolates Algorithm 2's incremental cost weights.",
    )
    # Static trees funnel everything onto the same fast paths: the
    # load-aware planner must win clearly on contended workloads.
    assert gaps["com-orkut"] > 1.1
    assert all(g >= 0.99 for g in gaps.values())

    w = get_workload("web-google", "gcn", 8)
    benchmark.pedantic(lambda: static_tree_plan(w.relation, w.topology),
                       rounds=3, iterations=1)


def test_ablation_feature_caching(benchmark):
    """§3 option (1): cache remote layer-0 embeddings to skip the
    feature-boundary allgather each epoch."""
    from repro.baselines import evaluate_scheme

    rows = []
    results = {}
    for dataset in ("reddit", "web-google"):
        w = get_workload(dataset, "gcn", 8)
        plain = evaluate_scheme(w, scheme="dgcl")
        cached = evaluate_scheme(w, scheme="dgcl-cache")
        results[dataset] = (plain, cached)
        rows.append([
            dataset,
            ms(plain.comm_time), ms(cached.comm_time),
            f"{1 - cached.comm_time / plain.comm_time:.0%}",
        ])
    write_table(
        "ablation_feature_caching",
        "Ablation: caching remote layer-0 features (DGCL, 8 GPUs)",
        ["Dataset", "comm/epoch (ms)", "with cache (ms)", "saved"],
        rows,
        notes="Reddit's 602-wide features make its feature boundary the "
              "dominant transfer; caching trades memory for most of it.",
    )
    for dataset, (plain, cached) in results.items():
        assert cached.ok and cached.comm_time < plain.comm_time
    # the fat-featured dataset saves the most
    saved_reddit = 1 - results["reddit"][1].comm_time / results["reddit"][0].comm_time
    assert saved_reddit > 0.4

    w = get_workload("web-google", "gcn", 8)
    benchmark.pedantic(lambda: evaluate_scheme(w, scheme="dgcl-cache"),
                       rounds=3, iterations=1)


def test_ablation_method_selection(benchmark):
    """§6.2: automatic per-pair mechanism selection vs forcing one."""
    from repro.comm.methods import CommMethod, MethodTable

    w = get_workload("reddit", "gcn", 8)
    bpu = w.boundary_bytes()[0]
    topo = w.topology
    rows = []
    times = {}
    variants = [
        ("automatic (§6.2)", MethodTable(topo)),
        ("force cuda-vm", MethodTable(topo, force=CommMethod.CUDA_VIRTUAL_MEMORY)),
        ("force pinned-host", MethodTable(topo, force=CommMethod.PINNED_HOST_MEMORY)),
        ("force nic-helper", MethodTable(topo, force=CommMethod.NIC_HELPER)),
    ]
    for name, table in variants:
        t = PlanExecutor(topo, methods=table).execute(w.spst_plan, bpu).total_time
        times[name] = t
        rows.append([name, ms(t)])
    write_table(
        "ablation_method_selection",
        "Ablation: communication-method selection, one allgather (reddit)",
        ["Variant", "Time (ms)"],
        rows,
        notes="Forcing one mechanism on every pair pays the mismatch "
              "penalty on the pairs it does not suit.",
    )
    auto = times["automatic (§6.2)"]
    for name, t in times.items():
        assert t >= auto * 0.999, name

    table = MethodTable(topo)
    executor = PlanExecutor(topo, methods=table)
    benchmark.pedantic(lambda: executor.execute(w.spst_plan, bpu),
                       rounds=3, iterations=1)


def test_ablation_hierarchical_partitioning(benchmark):
    """§4.1: hierarchy-aware cuts put fewer edges on the slow IB."""
    w = get_workload("web-google", "gcn", 16)
    topo = shared_topology(16)
    graph = w.graph

    hier = w.partition.assignment  # hierarchical by default
    flat = partition(graph, 16, seed=0).assignment

    def machine_cut(assignment):
        machine = np.asarray(topo.machine_of)[assignment]
        src, dst = graph.edges
        return int((machine[src] != machine[dst]).sum())

    rows = [
        ["hierarchical", edge_cut(graph, hier), machine_cut(hier)],
        ["flat", edge_cut(graph, flat), machine_cut(flat)],
    ]
    write_table(
        "ablation_hierarchical_partitioning",
        "Ablation: hierarchical vs flat 16-way partitioning (web-google)",
        ["Partitioner", "Total edge cut", "Cross-machine cut"],
        rows,
        notes="Hierarchical partitioning minimises the cross-IB cut first.",
    )
    assert machine_cut(hier) < machine_cut(flat)

    benchmark.pedantic(lambda: machine_cut(hier), rounds=3, iterations=1)
