"""Telemetry overhead: armed tracing must not move simulated time.

The observability layer's contract is that recording is strictly
post-hoc — spans are derived from finished reports and flag events, so
arming a tracer changes *zero* simulated timings.  This benchmark
asserts that contract across datasets and measures the wall-clock cost
of recording (the only cost telemetry is allowed to have), plus the
trace volume one allgather produces.
"""

import time

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.runtime import ProtocolRunner
from repro.simulator.executor import PlanExecutor

from benchmarks.conftest import get_workload, write_table

DATASETS = ["reddit", "web-google", "wiki-talk"]


def timed(fn, repeats=3):
    """(result, best wall seconds) of calling ``fn`` ``repeats`` times."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_telemetry_overhead(benchmark):
    rows = []
    for dataset in DATASETS:
        w = get_workload(dataset, "gcn", 8)
        bpu = w.boundary_bytes()[0]
        plan = w.spst_plan

        bare_exec = PlanExecutor(w.topology)
        bare, bare_wall = timed(lambda: bare_exec.execute(plan, bpu))

        tracer, metrics = Tracer(), MetricsRegistry()
        armed_exec = PlanExecutor(w.topology, tracer=tracer, metrics=metrics)

        def armed_run():
            tracer.clear()
            metrics.clear()
            return armed_exec.execute(plan, bpu)

        armed, armed_wall = timed(armed_run)

        # The contract: identical simulated outcomes, armed or not.
        assert armed.total_time == bare.total_time
        assert armed.stage_finish == bare.stage_finish

        proto_bare = ProtocolRunner(w.relation, plan).run_timed(bpu)
        proto_tracer = Tracer()
        proto_armed = ProtocolRunner(
            w.relation, plan, tracer=proto_tracer
        ).run_timed(bpu)
        assert proto_armed.total_time == proto_bare.total_time

        rows.append([
            dataset,
            f"{bare.total_time * 1e6:.2f}",
            len(tracer.events()) + len(proto_tracer.events()),
            f"{bare_wall * 1e3:.2f}",
            f"{armed_wall * 1e3:.2f}",
            f"{armed_wall / bare_wall - 1:+.0%}" if bare_wall else "n/a",
        ])
    write_table(
        "telemetry_overhead",
        "Telemetry overhead: one allgather, 8 GPUs, DGCL plan",
        ["Dataset", "Simulated (us)", "Spans", "Bare wall (ms)",
         "Armed wall (ms)", "Wall overhead"],
        rows,
        notes="Simulated time is asserted identical armed vs unarmed "
              "(executor and protocol paths); only host-side wall clock "
              "may pay for span recording.",
    )

    w = get_workload("web-google", "gcn", 8)
    plan = w.spst_plan
    tracer, metrics = Tracer(), MetricsRegistry()
    armed = PlanExecutor(w.topology, tracer=tracer, metrics=metrics)

    def record_once():
        tracer.clear()
        metrics.clear()
        armed.execute(plan, w.boundary_bytes()[0])

    benchmark.pedantic(record_once, rounds=3, iterations=1)


def test_telemetry_neutrality_newer_paths():
    """Auditor/recorder/tracer neutrality on the paths added since.

    The original contract covered the executor and protocol runner;
    this pins it on the auditor + flight recorder (executor sinks), the
    auto-tuner's audited full-fidelity rung, and elastic-transition
    training with an armed tracer.  Every simulated number must be
    bit-identical armed vs unarmed.
    """
    import numpy as np

    from repro.autotune import AutoTuner
    from repro.elastic import ElasticPolicy
    from repro.elastic.controller import ElasticController
    from repro.graph.generators import rmat
    from repro.obs import CostModelAuditor, FlightRecorder

    # Executor: auditor + recorder armed.
    w = get_workload("web-google", "gcn", 8)
    bpu = w.boundary_bytes()[0]
    plan = w.spst_plan
    bare = PlanExecutor(w.topology).execute(plan, bpu)
    armed = PlanExecutor(
        w.topology, auditor=CostModelAuditor(), recorder=FlightRecorder()
    ).execute(plan, bpu)
    assert armed.total_time == bare.total_time
    assert armed.stage_finish == bare.stage_finish

    # Auto-tuner: every trial's cost identical with the audited rung.
    g = rmat(250, 1800, seed=4)
    topo = get_workload("web-google", "gcn", 8).topology
    plain = AutoTuner(g, topo).tune()
    audited = AutoTuner(g, topo, auditor=CostModelAuditor()).tune()
    assert [t.cost for t in plain.trials] == [t.cost for t in audited.trials]
    assert plain.candidate == audited.candidate

    # Elastic transitions: same losses and final clock with a tracer.
    rng = np.random.default_rng(0)
    feats = rng.standard_normal((g.num_vertices, 6)).astype(np.float32)
    labels = rng.integers(0, 4, g.num_vertices)
    schedule = [(1, "shrink", (6, 7)), (2, "grow", (6, 7))]

    def run(tracer=None):
        from repro.gnn import build_gcn

        controller = ElasticController(
            g, topo, build_gcn(6, 8, 4, seed=7), feats, labels,
            elastic=ElasticPolicy(min_devices=2), tracer=tracer,
        )
        report = controller.train_with_schedule(4, schedule)
        return list(report.losses), controller.clock

    bare_run, armed_run = run(), run(Tracer())
    assert bare_run == armed_run
