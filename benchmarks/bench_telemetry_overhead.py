"""Telemetry overhead: armed tracing must not move simulated time.

The observability layer's contract is that recording is strictly
post-hoc — spans are derived from finished reports and flag events, so
arming a tracer changes *zero* simulated timings.  This benchmark
asserts that contract across datasets and measures the wall-clock cost
of recording (the only cost telemetry is allowed to have), plus the
trace volume one allgather produces.
"""

import time

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.runtime import ProtocolRunner
from repro.simulator.executor import PlanExecutor

from benchmarks.conftest import get_workload, write_table

DATASETS = ["reddit", "web-google", "wiki-talk"]


def timed(fn, repeats=3):
    """(result, best wall seconds) of calling ``fn`` ``repeats`` times."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_telemetry_overhead(benchmark):
    rows = []
    for dataset in DATASETS:
        w = get_workload(dataset, "gcn", 8)
        bpu = w.boundary_bytes()[0]
        plan = w.spst_plan

        bare_exec = PlanExecutor(w.topology)
        bare, bare_wall = timed(lambda: bare_exec.execute(plan, bpu))

        tracer, metrics = Tracer(), MetricsRegistry()
        armed_exec = PlanExecutor(w.topology, tracer=tracer, metrics=metrics)

        def armed_run():
            tracer.clear()
            metrics.clear()
            return armed_exec.execute(plan, bpu)

        armed, armed_wall = timed(armed_run)

        # The contract: identical simulated outcomes, armed or not.
        assert armed.total_time == bare.total_time
        assert armed.stage_finish == bare.stage_finish

        proto_bare = ProtocolRunner(w.relation, plan).run_timed(bpu)
        proto_tracer = Tracer()
        proto_armed = ProtocolRunner(
            w.relation, plan, tracer=proto_tracer
        ).run_timed(bpu)
        assert proto_armed.total_time == proto_bare.total_time

        rows.append([
            dataset,
            f"{bare.total_time * 1e6:.2f}",
            len(tracer.events()) + len(proto_tracer.events()),
            f"{bare_wall * 1e3:.2f}",
            f"{armed_wall * 1e3:.2f}",
            f"{armed_wall / bare_wall - 1:+.0%}" if bare_wall else "n/a",
        ])
    write_table(
        "telemetry_overhead",
        "Telemetry overhead: one allgather, 8 GPUs, DGCL plan",
        ["Dataset", "Simulated (us)", "Spans", "Bare wall (ms)",
         "Armed wall (ms)", "Wall overhead"],
        rows,
        notes="Simulated time is asserted identical armed vs unarmed "
              "(executor and protocol paths); only host-side wall clock "
              "may pay for span recording.",
    )

    w = get_workload("web-google", "gcn", 8)
    plan = w.spst_plan
    tracer, metrics = Tracer(), MetricsRegistry()
    armed = PlanExecutor(w.topology, tracer=tracer, metrics=metrics)

    def record_once():
        tracer.clear()
        metrics.clear()
        armed.execute(plan, w.boundary_bytes()[0])

    benchmark.pedantic(record_once, rounds=3, iterations=1)
