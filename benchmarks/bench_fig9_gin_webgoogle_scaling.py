"""Figure 9: GIN on Web-Google with 1-16 GPUs, all four schemes.

Paper shapes: the methods have *similar* per-epoch times because GIN's
computation dominates on the sparse graph; DGCL still never loses by
much; the 1-GPU partitioned run is omitted for memory reasons (our
simulator reports OOM); Swap is single-machine only.
"""

import pytest

from repro.baselines import SCHEMES, evaluate_scheme

from benchmarks.conftest import get_workload, write_table

GPU_COUNTS = (1, 2, 4, 8, 16)


def collect():
    results = {}
    for n in GPU_COUNTS:
        w = get_workload("web-google", "gin", n)
        for scheme in SCHEMES:
            results[(n, scheme)] = evaluate_scheme(w, scheme=scheme)
    return results


def test_fig9_gin_webgoogle_scaling(benchmark):
    results = collect()
    rows = []
    for n in GPU_COUNTS:
        row = [n]
        for scheme in SCHEMES:
            r = results[(n, scheme)]
            row.append(
                f"{r.ms():.3f} ({r.ms('comm_time'):.3f})" if r.ok else r.status
            )
        rows.append(row)
    write_table(
        "fig9_gin_webgoogle_scaling",
        "Figure 9: GIN on Web-Google — epoch ms (comm ms) by GPU count",
        ["GPUs"] + list(SCHEMES),
        rows,
    )

    # Paper: "we do not report GIN on Web-Google using 1 GPU" (memory).
    assert results[(1, "dgcl")].status == "oom"
    assert results[(1, "replication")].status == "oom"

    # Computation dominates: schemes finish within ~2x of each other
    # wherever they run (paper: "similar per-epoch time ... because the
    # computation time dominates"); Swap's staging is the exception.
    for n in (2, 4, 8):
        times = [
            results[(n, s)].epoch_time
            for s in ("dgcl", "peer-to-peer", "replication")
            if results[(n, s)].ok
        ]
        assert max(times) < 2.5 * min(times), n

    # Communication is a small share for DGCL at 8 GPUs.
    r8 = results[(8, "dgcl")]
    assert r8.comm_time < 0.3 * r8.epoch_time

    # Compute scales down with more GPUs.
    assert (
        results[(8, "dgcl")].compute_time < results[(2, "dgcl")].compute_time
    )

    assert results[(16, "swap")].status == "unsupported"

    w = get_workload("web-google", "gin", 8)
    benchmark.pedantic(lambda: evaluate_scheme(w, scheme="dgcl"), rounds=3,
                       iterations=1)
