"""Perf-regression gate over the ``BENCH_*.json`` artifacts.

Every benchmark that matters for CI emits a machine-readable artifact
(:mod:`benchmarks.emit_json`).  This comparator diffs a candidate
results directory against a baseline directory metric-by-metric, with
per-metric direction and relative tolerance, and exits non-zero when a
gated metric regressed — replacing the hand-coded floor asserts that
used to live inside individual benchmarks.

Two kinds of metric exist:

* **simulated** — deterministic numbers out of the event simulator
  (epoch seconds, audit errors, oracle pass counts).  These are
  bit-stable for a fixed seed, so their tolerances are tight and they
  gate on every runner;
* **wall** — wall-clock speedups, which shared CI runners cannot
  measure reliably.  ``--skip-wall`` (set in CI) exempts them; locally
  they gate with generous tolerances.

Each spec also names *identity* paths (workload shape knobs).  When the
baseline and candidate disagree on identity — e.g. a smoke-scale run
diffed against a committed full-scale baseline — the benchmark is
skipped with a note instead of producing an apples-to-oranges verdict.

Usage::

    python benchmarks/compare.py --baseline DIR --candidate DIR \
        [--skip-wall] [--json]

The module is import-safe (``from benchmarks.compare import main``) so
the test suite can gate an injected regression without a subprocess.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Metric", "SPECS", "compare_payload", "compare_dirs", "main"]


@dataclass(frozen=True)
class Metric:
    """One gated number inside a benchmark payload.

    ``path`` is a dotted path into the payload; a ``*`` component fans
    out over every key of the mapping at that level (``cells.*.x``).
    ``direction`` is ``higher`` (candidate may not drop more than
    ``tolerance`` below baseline), ``lower`` (may not rise more than
    ``tolerance`` above), or ``equal`` (must match exactly — counts,
    booleans, parity flags).  ``wall`` marks wall-clock metrics that
    ``--skip-wall`` exempts.
    """

    path: str
    direction: str  # "higher" | "lower" | "equal"
    tolerance: float = 0.0
    wall: bool = False


#: Per-benchmark gate specs: (identity paths, gated metrics).  Identity
#: paths must match between baseline and candidate or the benchmark is
#: skipped as a workload mismatch (e.g. smoke vs full scale).
SPECS: Dict[str, Tuple[Tuple[str, ...], Tuple[Metric, ...]]] = {
    "fastpath": (
        ("workload",),
        (
            Metric("composite_speedup", "higher", 0.30, wall=True),
            Metric("planner_speedup", "higher", 0.30, wall=True),
        ),
    ),
    "autotune": (
        ("gpus", "model"),
        (
            Metric("cells.*.picked_epoch_seconds", "lower", 0.01),
            Metric("cells.*.evaluations", "equal"),
            Metric("plan_cache.speedup", "higher", 0.50, wall=True),
        ),
    ),
    "schemes": (
        ("model", "cells.*.graph", "cells.*.topology", "cells.*.layers",
         "cells.*.feature_size"),
        (
            Metric("cells.*.pick_is_expected", "equal"),
            Metric("cells.*.picked_epoch_seconds", "lower", 0.01),
            Metric("cells.*.evaluations", "equal"),
            Metric("families_priced_count", "higher", 0.0),
            Metric("staleness_sweep.amortisation_s4", "higher", 0.05),
        ),
    ),
    "elastic": (
        ("epochs",),
        (
            Metric("gradient_parity", "equal"),
            Metric("soak.passed", "higher", 0.0),
            Metric("soak.seeds", "equal"),
        ),
    ),
    "serve": (
        ("gpus", "scenarios"),
        (
            Metric("cells.*.p99_latency_us", "lower", 0.05),
            Metric("cells.*.goodput_rps", "higher", 0.05),
            Metric("cells.*.shed_rate", "lower", 0.10),
            Metric("cells.*.silent_drops", "equal"),
            Metric("cells.*.deterministic", "equal"),
        ),
    ),
    "sampling": (
        ("graph", "gpus", "batch_size", "fanouts"),
        (
            Metric("modes.*.plans_per_second", "higher", 0.40, wall=True),
            Metric("speedup.incremental_vs_cold", "higher", 0.30, wall=True),
            Metric("speedup.warm_vs_cold", "higher", 0.30, wall=True),
            Metric("modes.*.p99_batch_ms", "lower", 0.50, wall=True),
            Metric("modes.*.batches", "equal"),
            Metric("warm_cache_hits", "equal"),
            Metric("gradient_parity", "equal"),
        ),
    ),
    "obs": (
        ("workload",),
        (
            Metric("total_simulated_seconds", "lower", 0.05),
            Metric("critical_path_seconds", "lower", 0.05),
            Metric("audit.mean_abs_stage_error", "lower", 0.10),
            Metric("audit.fig10_match", "equal"),
            Metric("profile_deterministic", "equal"),
        ),
    ),
}


def _lookup(payload: Any, parts: List[str]) -> Iterator[Tuple[str, Any]]:
    """Yield ``(resolved_path, value)`` for a dotted path with ``*``."""
    if not parts:
        yield "", payload
        return
    head, rest = parts[0], parts[1:]
    if not isinstance(payload, dict):
        return
    keys = sorted(payload) if head == "*" else ([head] if head in payload else [])
    for key in keys:
        for sub, value in _lookup(payload[key], rest):
            yield f"{key}.{sub}" if sub else key, value


def _check(metric: Metric, base: float, cand: float) -> bool:
    """Does the candidate value pass the metric's gate?"""
    if metric.direction == "equal":
        return base == cand
    if not isinstance(base, (int, float)) or not isinstance(cand, (int, float)):
        return False
    if metric.direction == "higher":
        return cand >= base * (1.0 - metric.tolerance)
    return cand <= base * (1.0 + metric.tolerance)


def compare_payload(
    name: str,
    base_payload: Dict[str, Any],
    cand_payload: Dict[str, Any],
    skip_wall: bool = False,
) -> Dict[str, Any]:
    """Gate one benchmark's candidate payload against its baseline.

    Returns a verdict document: ``status`` is ``pass`` / ``fail`` /
    ``skipped`` (unknown benchmark or identity mismatch), ``checks``
    lists every gated metric with both values and its verdict.
    """
    spec = SPECS.get(name)
    if spec is None:
        return {"benchmark": name, "status": "skipped",
                "reason": "no gate spec for this benchmark"}
    identity_paths, metrics = spec
    for path in identity_paths:
        base_id = list(_lookup(base_payload, path.split(".")))
        cand_id = list(_lookup(cand_payload, path.split(".")))
        if base_id != cand_id:
            return {"benchmark": name, "status": "skipped",
                    "reason": f"workload mismatch on {path!r} "
                              "(smoke vs full scale?)"}
    checks: List[Dict[str, Any]] = []
    failed = 0
    for metric in metrics:
        if skip_wall and metric.wall:
            continue
        base_values = dict(_lookup(base_payload, metric.path.split(".")))
        cand_values = dict(_lookup(cand_payload, metric.path.split(".")))
        if not base_values:
            continue  # metric absent from the baseline: nothing to gate
        for path, base_value in base_values.items():
            if path not in cand_values:
                failed += 1
                checks.append({
                    "metric": path, "direction": metric.direction,
                    "baseline": base_value, "candidate": None, "ok": False,
                    "reason": "metric missing from the candidate",
                })
                continue
            cand_value = cand_values[path]
            ok = _check(metric, base_value, cand_value)
            if not ok:
                failed += 1
            checks.append({
                "metric": path,
                "direction": metric.direction,
                "tolerance": metric.tolerance,
                "wall": metric.wall,
                "baseline": base_value,
                "candidate": cand_value,
                "ok": ok,
            })
    return {
        "benchmark": name,
        "status": "fail" if failed else "pass",
        "failed": failed,
        "checks": checks,
    }


def _load_artifacts(directory: Path) -> Dict[str, Dict[str, Any]]:
    """Map benchmark name -> payload for every ``BENCH_*.json`` found."""
    artifacts: Dict[str, Dict[str, Any]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path) as fh:
            doc = json.load(fh)
        if isinstance(doc, dict) and "benchmark" in doc and "payload" in doc:
            artifacts[doc["benchmark"]] = doc["payload"]
    return artifacts


def compare_dirs(
    baseline: Path, candidate: Path, skip_wall: bool = False
) -> Dict[str, Any]:
    """Gate every candidate artifact that has a committed baseline.

    Baselines without a candidate artifact fail loudly (a benchmark
    silently dropping out of CI is itself a regression); candidate
    artifacts without a baseline are listed as new.
    """
    base = _load_artifacts(baseline)
    cand = _load_artifacts(candidate)
    results = []
    for name in sorted(base):
        if name not in cand:
            results.append({"benchmark": name, "status": "fail",
                            "reason": "candidate artifact missing"})
            continue
        results.append(compare_payload(name, base[name], cand[name],
                                       skip_wall=skip_wall))
    verdict = {
        "baseline": str(baseline),
        "candidate": str(candidate),
        "skip_wall": skip_wall,
        "new_benchmarks": sorted(set(cand) - set(base)),
        "results": results,
        "passed": all(r["status"] != "fail" for r in results),
    }
    return verdict


def _render(verdict: Dict[str, Any]) -> str:
    """Terminal-friendly verdict table."""
    lines = [
        f"bench compare: {verdict['baseline']} (baseline) vs "
        f"{verdict['candidate']} (candidate)"
        + ("  [wall metrics skipped]" if verdict["skip_wall"] else ""),
    ]
    for result in verdict["results"]:
        status = result["status"]
        if status == "skipped":
            lines.append(f"  {result['benchmark']:10s} SKIP  {result['reason']}")
            continue
        if "checks" not in result:
            lines.append(f"  {result['benchmark']:10s} FAIL  {result['reason']}")
            continue
        lines.append(f"  {result['benchmark']:10s} "
                     f"{'PASS' if status == 'pass' else 'FAIL'}  "
                     f"({len(result['checks'])} gated metric(s))")
        for check in result["checks"]:
            if check["ok"]:
                continue
            lines.append(
                f"    REGRESSION {check['metric']}: "
                f"{check['baseline']} -> {check['candidate']} "
                f"(want {check['direction']}, "
                f"tol {check.get('tolerance', 0.0):.0%})"
            )
    if verdict["new_benchmarks"]:
        lines.append(f"  new (no baseline yet): "
                     f"{', '.join(verdict['new_benchmarks'])}")
    lines.append("verdict: " + ("PASS" if verdict["passed"] else "FAIL"))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json artifacts against committed baselines"
    )
    parser.add_argument("--baseline", required=True, metavar="DIR",
                        help="directory holding the baseline artifacts")
    parser.add_argument("--candidate", required=True, metavar="DIR",
                        help="directory holding the freshly produced artifacts")
    parser.add_argument("--skip-wall", action="store_true",
                        help="exempt wall-clock metrics (noisy CI runners)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable verdict on stdout")
    args = parser.parse_args(argv)
    baseline, candidate = Path(args.baseline), Path(args.candidate)
    for directory, label in ((baseline, "baseline"), (candidate, "candidate")):
        if not directory.is_dir():
            print(f"error: {label} directory not found: {directory}",
                  file=sys.stderr)
            return 2
    verdict = compare_dirs(baseline, candidate, skip_wall=args.skip_wall)
    if args.json:
        print(json.dumps(verdict, indent=2, sort_keys=True))
    else:
        print(_render(verdict))
    return 0 if verdict["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
