"""Flight-recorder profile + cost-model audit on the reference workload.

This benchmark produces the observability artifact
(``benchmarks/results/BENCH_obs.json``) that the perf-regression gate
(:mod:`benchmarks.compare`) diffs on every CI run.  Everything gated in
it is **simulated** time — deterministic for a fixed seed — so the
tolerances are tight even on shared runners.

Three claims are pinned:

* **determinism** — profiling the same workload twice yields
  byte-identical profile documents (the recorder, auditor and quantile
  digest add no nondeterminism);
* **fig10 agreement** — for the default executor the auditor's
  per-collective signed error equals the Figure-10 quantity
  ``(actual - plan.estimated_cost(bpu)) / estimated`` to float
  precision (well inside the 1 % acceptance bound): the audit table is
  a live Figure 10;
* **attribution sanity** — the critical path is non-empty, ends at the
  run's finish time, and the per-stage attribution covers the whole
  simulated timeline.
"""

from __future__ import annotations

from repro.baselines.strategies import evaluate_scheme
from repro.core.spst import SPSTPlanner
from repro.obs import (
    CostModelAuditor,
    FlightRecorder,
    MetricsRegistry,
    RunProfile,
    Tracer,
    profile_json,
)
from repro.simulator.executor import PlanExecutor

from benchmarks.conftest import get_workload, shared_topology, write_table
from benchmarks.emit_json import emit_json

DATASETS = ["web-google", "wiki-talk"]
NUM_GPUS = 8

#: |auditor signed error - fig10 signed error| bound.  The two are the
#: same computation for the default executor, so this is float noise;
#: the PR acceptance criterion is 1e-2.
FIG10_MATCH_TOL = 1e-9


def _profile_once(dataset: str) -> RunProfile:
    """One audited + recorded dgcl evaluation, digested into a profile."""
    w = get_workload(dataset, "gcn", NUM_GPUS)
    tracer, metrics = Tracer(), MetricsRegistry()
    auditor = CostModelAuditor(metrics=metrics)
    recorder = FlightRecorder()
    result = evaluate_scheme(w, scheme="dgcl", tracer=tracer, metrics=metrics,
                             auditor=auditor, recorder=recorder)
    assert result.ok, result.status
    return RunProfile.from_recorder(recorder, audit=auditor, meta={
        "source": "bench", "dataset": dataset, "gpus": NUM_GPUS,
    })


def _fig10_delta(dataset: str) -> float:
    """|auditor error - fig10 error| on a fresh SPST plan execution."""
    w = get_workload(dataset, "gcn", NUM_GPUS)
    bpu = w.boundary_bytes()[0]
    plan = SPSTPlanner(w.topology, seed=0).plan(w.relation)
    estimated = plan.estimated_cost(bpu)
    actual = PlanExecutor(w.topology).execute(plan, bpu).total_time
    fig10_error = (actual - estimated) / estimated

    auditor = CostModelAuditor()
    PlanExecutor(w.topology, auditor=auditor).execute(plan, bpu)
    return abs(auditor.records[-1].signed_error - fig10_error)


def test_profile_flight_recorder():
    """Profile both reference datasets; emit and gate the obs artifact."""
    per_dataset = {}
    total_simulated = 0.0
    critical_total = 0.0
    abs_errors = []
    deterministic = True
    fig10_match = True
    rows = []
    for dataset in DATASETS:
        profile = _profile_once(dataset)
        again = _profile_once(dataset)
        if profile_json(profile) != profile_json(again):
            deterministic = False
        delta = _fig10_delta(dataset)
        if delta > FIG10_MATCH_TOL:
            fig10_match = False
        audit = profile.audit["aggregate"]
        hottest = profile.hottest_connections(1)[0]
        per_dataset[dataset] = {
            "total_simulated_seconds": profile.total_seconds,
            "critical_path_seconds": profile.critical_seconds(),
            "critical_hops": len(profile.critical),
            "collectives": len(profile.collectives),
            "hottest_connection": hottest.name,
            "audit_signed_error": audit["signed_error"],
            "audit_mean_abs_stage_error": audit["mean_abs_stage_error"],
            "fig10_delta": delta,
        }
        total_simulated += profile.total_seconds
        critical_total += profile.critical_seconds()
        abs_errors.append(audit["mean_abs_stage_error"])
        rows.append([
            dataset,
            f"{profile.total_seconds * 1e6:.3f}",
            f"{profile.critical_seconds() * 1e6:.3f}",
            f"{len(profile.critical)}",
            hottest.name,
            f"{audit['signed_error']:+.1%}",
            f"{delta:.2e}",
        ])

    write_table(
        "profile_flight_recorder",
        f"Flight-recorder profiles, dgcl at {NUM_GPUS} GPUs",
        ["dataset", "total (us)", "critical (us)", "hops",
         "hottest connection", "audit err", "fig10 delta"],
        rows,
        notes=(
            "audit err is the aggregate signed prediction error of the "
            "staged cost model vs the event simulation (a live Fig. 10); "
            "fig10 delta is |auditor error - fig10 benchmark error| and "
            "must be float noise."
        ),
    )

    emit_json("obs", {
        "workload": {
            "datasets": DATASETS,
            "num_gpus": NUM_GPUS,
            "scheme": "dgcl",
        },
        "per_dataset": per_dataset,
        "total_simulated_seconds": total_simulated,
        "critical_path_seconds": critical_total,
        "audit": {
            "mean_abs_stage_error": max(abs_errors),
            "fig10_match": fig10_match,
        },
        "profile_deterministic": deterministic,
    })

    assert deterministic, "profiling the same workload twice diverged"
    assert fig10_match, "audit error diverged from the fig10 quantity"
    for dataset, cell in per_dataset.items():
        assert cell["critical_hops"] >= 1, dataset
        assert 0 < cell["critical_path_seconds"] <= cell["total_simulated_seconds"], dataset
