"""Table 2: peer-to-peer time spent on NVLink vs other links.

Paper (GCN layer, 8 GPUs): NVLink pairs finish in ~1-1.7 ms while the
slow-link pairs take 6-18 ms — the motivating observation that p2p
"fails to fully utilize the fast links".  Following the paper's Table 7
methodology, each class is measured with the other class's traffic
removed.
"""

import pytest

from repro.simulator.executor import PlanExecutor
from repro.topology.links import LinkKind

from benchmarks.conftest import get_workload, ms, write_table

DATASETS = ["web-google", "reddit", "wiki-talk"]
PAPER = {  # ms, (NVLink, others)
    "web-google": (0.99, 6.20),
    "reddit": (1.70, 18.1),
    "wiki-talk": (1.39, 6.13),
}


def split_times(workload):
    """(nvlink_time, other_time) of one p2p GCN-layer transfer."""
    plan = workload.p2p_plan
    bpu = workload.boundary_bytes()[0]
    executor = PlanExecutor(workload.topology)
    nv = [t for t in plan.tuples() if t.link.is_nvlink]
    other = [t for t in plan.tuples() if not t.link.is_nvlink]
    t_nv = executor.execute_tuples(nv, bpu).total_time
    t_other = executor.execute_tuples(other, bpu).total_time
    return t_nv, t_other


def test_table2_p2p_link_breakdown(benchmark):
    rows = []
    measured = {}
    for dataset in DATASETS:
        w = get_workload(dataset, "gcn", 8)
        t_nv, t_other = split_times(w)
        measured[dataset] = (t_nv, t_other)
        rows.append([
            dataset, ms(t_nv), ms(t_other),
            f"{PAPER[dataset][0]:.2f}", f"{PAPER[dataset][1]:.2f}",
        ])
    write_table(
        "table2_p2p_link_breakdown",
        "Table 2: p2p time (ms) on NVLink vs other links, one GCN layer, 8 GPUs",
        ["Dataset", "NVLink (ms)", "Others (ms)", "paper NVLink", "paper Others"],
        rows,
        notes="Each class measured with the other class's traffic removed.",
    )
    # Shape: slow links dominate by a wide margin on every dataset.
    for dataset, (t_nv, t_other) in measured.items():
        assert t_other > 2.5 * t_nv, dataset

    w = get_workload("web-google", "gcn", 8)
    benchmark.pedantic(lambda: split_times(w), rounds=3, iterations=1)
