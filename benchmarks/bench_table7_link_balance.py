"""Table 7: DGCL balances communication time across link classes.

Paper: measuring one graphAllgather with the other link class's traffic
removed, the NVLink time and the other-links time differ by 1.8-12.6 %
— evidence that SPST equalises per-link load instead of just dumping
everything on NVLink.
"""

import pytest

from repro.simulator.executor import PlanExecutor

from benchmarks.conftest import get_workload, ms, write_table

DATASETS = ["web-google", "reddit", "com-orkut", "wiki-talk"]
PAPER_RELDIFF = {
    "web-google": "4.32%", "reddit": "7.41%",
    "com-orkut": "1.78%", "wiki-talk": "12.6%",
}


def split_times(workload):
    plan = workload.spst_plan
    bpu = workload.boundary_bytes()[0]
    executor = PlanExecutor(workload.topology)
    nv = [t for t in plan.tuples() if t.link.is_nvlink]
    other = [t for t in plan.tuples() if not t.link.is_nvlink]
    t_nv = executor.execute_tuples(nv, bpu).total_time
    t_other = executor.execute_tuples(other, bpu).total_time
    return t_nv, t_other


def test_table7_link_balance(benchmark):
    rows = []
    measured = {}
    for dataset in DATASETS:
        w = get_workload(dataset, "gcn", 8)
        t_nv, t_other = split_times(w)
        measured[dataset] = (t_nv, t_other)
        rel_diff = abs(t_nv - t_other) / max(t_nv, t_other)
        rows.append([
            dataset, ms(t_nv), ms(t_other), f"{rel_diff:.1%}",
            PAPER_RELDIFF[dataset],
        ])
    write_table(
        "table7_link_balance",
        "Table 7: DGCL communication time (ms) per link class, 8 GPUs",
        ["Dataset", "NVLink", "Others", "Relative diff", "paper diff"],
        rows,
        notes="Each class measured with the other class's traffic removed.",
    )

    for dataset, (t_nv, t_other) in measured.items():
        rel_diff = abs(t_nv - t_other) / max(t_nv, t_other)
        # Balanced: the two classes finish within 60 % of each other —
        # contrast with the p2p breakdown of Table 2 where the slow
        # links take 3-10x longer.
        assert rel_diff < 0.6, (dataset, t_nv, t_other)
        w = get_workload(dataset, "gcn", 8)
        from benchmarks.bench_table2_p2p_link_breakdown import (
            split_times as p2p_split,
        )

        p2p_nv, p2p_other = p2p_split(w)
        p2p_diff = abs(p2p_nv - p2p_other) / max(p2p_nv, p2p_other)
        assert rel_diff < p2p_diff, dataset

    w = get_workload("web-google", "gcn", 8)
    benchmark.pedantic(lambda: split_times(w), rounds=3, iterations=1)
