"""Figure 7: the main result — per-epoch and communication time for
GCN / CommNet / GIN on all four graphs with 8 GPUs, four schemes.

Paper headlines this experiment reproduces in *shape*:

* DGCL has the shortest per-epoch time in every cell;
* DGCL's communication time beats peer-to-peer by a wide margin
  (paper: 4.45x average, up to 7x) and Swap by more;
* Replication OOMs on the two large graphs (Com-Orkut, Wiki-Talk) and
  pays a heavy recomputation penalty on dense Reddit;
* Swap is worst on the three larger graphs.

Known deviation (documented in EXPERIMENTS.md): on Reddit the paper has
Swap slightly *faster* than p2p; our idealized host-staging model puts
it slightly slower.
"""

import math

import pytest

from repro.baselines import SCHEMES, evaluate_scheme

from benchmarks.conftest import get_workload, ms, write_table

DATASETS = ["reddit", "com-orkut", "web-google", "wiki-talk"]
MODELS = ["gcn", "commnet", "gin"]


def evaluate_all():
    results = {}
    for dataset in DATASETS:
        for model in MODELS:
            w = get_workload(dataset, model, 8)
            for scheme in SCHEMES:
                results[(dataset, model, scheme)] = evaluate_scheme(w, scheme=scheme)
    return results


def test_fig7_main_results(benchmark):
    results = evaluate_all()
    for dataset in DATASETS:
        rows = []
        for model in MODELS:
            row = [model]
            for scheme in SCHEMES:
                r = results[(dataset, model, scheme)]
                row.append(
                    f"{r.ms():.3f} ({r.ms('comm_time'):.3f})" if r.ok else r.status.upper()
                )
            rows.append(row)
        write_table(
            f"fig7_main_results_{dataset}",
            f"Figure 7 ({dataset}): per-epoch time ms (comm time ms), 8 GPUs",
            ["Model"] + list(SCHEMES),
            rows,
            notes="Format: epoch_ms (comm_ms); OOM = simulated out-of-memory.",
        )

    # (1) DGCL achieves the shortest per-epoch time in all cells.
    for dataset in DATASETS:
        for model in MODELS:
            dgcl = results[(dataset, model, "dgcl")]
            assert dgcl.ok
            for scheme in SCHEMES[1:]:
                r = results[(dataset, model, scheme)]
                if r.ok:
                    assert dgcl.epoch_time <= r.epoch_time * 1.001, (
                        dataset, model, scheme
                    )

    # (2) Large average communication reduction vs peer-to-peer.
    ratios = []
    for dataset in DATASETS:
        for model in MODELS:
            dgcl = results[(dataset, model, "dgcl")]
            p2p = results[(dataset, model, "peer-to-peer")]
            if dgcl.ok and p2p.ok and dgcl.comm_time > 0:
                ratios.append(p2p.comm_time / dgcl.comm_time)
    geo_mean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    assert geo_mean > 2.0, f"p2p/DGCL comm geo-mean only {geo_mean:.2f}"

    # (3) Replication OOMs on the large graphs, runs on the small ones.
    for model in MODELS:
        assert results[("com-orkut", model, "replication")].status == "oom"
        assert results[("wiki-talk", model, "replication")].status == "oom"
        assert results[("reddit", model, "replication")].ok
        assert results[("web-google", model, "replication")].ok

    # (4) Replication pays heavy recomputation on dense Reddit.
    assert (
        results[("reddit", "gcn", "replication")].epoch_time
        > 2.5 * results[("reddit", "gcn", "dgcl")].epoch_time
    )

    # (5) Swap is worst on the three larger graphs.
    for dataset in ("com-orkut", "web-google", "wiki-talk"):
        for model in MODELS:
            swap = results[(dataset, model, "swap")]
            others = [
                results[(dataset, model, s)]
                for s in ("dgcl", "peer-to-peer")
            ]
            assert all(swap.epoch_time >= o.epoch_time for o in others if o.ok)

    w = get_workload("web-google", "gcn", 8)
    benchmark.pedantic(lambda: evaluate_scheme(w, scheme="dgcl"), rounds=3,
                       iterations=1)
