"""Scheme-registry benchmark: the widened space earns its candidates.

The registry grew two communication-avoiding families (CAGNET 1.5D/2D)
and one pipelined family (DistGNN delayed aggregation).  New schemes
only pay their way if the tuner actually *picks* them somewhere, so
this benchmark tunes a grid of synthetic workload cells chosen so that
each new family is genuinely cheapest on at least one — recorded in
``BENCH_schemes.json`` and gated by ``compare.py``:

* **cagnet-1.5d** — dense Erdős–Rényi on the PCIe-only box with a deep
  model: every SPST tree shares the same few PCIe switches, while the
  systolic ring gives perfect per-stage link balance;
* **cagnet-2d** — hub-heavy RMAT on a 2x4 torus with a tiny feature
  width: the latency/stage-bound regime where the grid's semi-perimeter
  depth beats both the ring walk and SPST's contended trees;
* **distgnn-delayed** — comm-bound RMAT on a ring, full default space:
  amortising the exchange over the refresh period wins whenever the
  cell is communication-dominated and staleness is allowed.

The CAGNET cells pin ``staleness_options=(0,)`` — exact-aggregation
cells, the same restriction a training session applies when it cannot
tolerate stale neighbours; the DistGNN cell sweeps the full space.
Alongside the picks, the artifact records how many scheme families the
tuner priced (>= 6) and a staleness sweep showing the monotone
comm-time amortisation the ``staleness`` knob buys.
"""

from repro.autotune import AutoTuner, SearchSpace, workload_spec
from repro.baselines import evaluate_scheme
from repro.baselines.strategies import Workload
from repro.graph.generators import erdos_renyi, rmat
from repro.topology.presets import pcie_only, ring, torus

from benchmarks.conftest import write_table
from benchmarks.emit_json import emit_json

#: One row per expected winner: the new scheme and a synthetic cell
#: where it is genuinely cheapest under the staged cost model.
CELLS = (
    {
        "name": "pcie8-er-deep",
        "want": "cagnet-1.5d",
        "graph": ("erdos_renyi", 200, 16000, 2),
        "topology": ("pcie_only", 8),
        "layers": 4,
        "feature_size": 128,
        "exact": True,
    },
    {
        "name": "torus2x4-rmat-thin",
        "want": "cagnet-2d",
        "graph": ("rmat", 400, 16000, 11),
        "topology": ("torus", 2, 4),
        "layers": 6,
        "feature_size": 4,
        "exact": True,
    },
    {
        "name": "ring8-rmat",
        "want": "distgnn-delayed",
        "graph": ("rmat", 400, 8000, 1),
        "topology": ("ring", 8),
        "layers": 2,
        "feature_size": 128,
        "exact": False,
    },
)

GRAPHS = {"erdos_renyi": erdos_renyi, "rmat": rmat}
TOPOLOGIES = {"pcie_only": pcie_only, "ring": ring, "torus": torus}

STALENESS_SWEEP = (0, 1, 2, 4)


def build_cell(cell):
    """Materialise one cell's graph / topology / spec / search space."""
    gkind, v, e, seed = cell["graph"]
    graph = GRAPHS[gkind](v, e, seed=seed)
    tkind, *targs = cell["topology"]
    topology = TOPOLOGIES[tkind](*targs)
    fs = cell["feature_size"]
    spec = workload_spec(graph, f"schemes-{cell['name']}",
                         feature_size=fs, hidden_size=fs)
    space = (SearchSpace(topology, staleness_options=(0,))
             if cell["exact"] else None)
    return graph, topology, spec, space


def tune_cell(cell):
    """Tune one cell; returns (report, per-strategy best fixed costs)."""
    graph, topology, spec, space = build_cell(cell)
    tuner = AutoTuner(graph, topology, model_name="gcn",
                      num_layers=cell["layers"], spec=spec, space=space)
    report = tuner.tune()
    # Per-strategy floor over the full-fidelity trials: what each fixed
    # scheme family would have cost had it been hard-coded.
    fixed = {}
    for t in report.trials:
        if t.fidelity < 1.0 or not t.result.ok:
            continue
        s = t.candidate.strategy
        fixed[s] = min(fixed.get(s, float("inf")), t.cost)
    return report, fixed


def staleness_sweep(cell):
    """Epoch/comm time of distgnn-delayed across the staleness ladder."""
    graph, topology, spec, _ = build_cell(cell)
    w = Workload(spec.name, "gcn", topology, num_layers=cell["layers"],
                 graph=graph, spec=spec)
    points = []
    for s in STALENESS_SWEEP:
        r = evaluate_scheme(w, scheme="distgnn-delayed", staleness=s)
        assert r.ok, f"distgnn-delayed infeasible at staleness={s}"
        points.append({
            "staleness": s,
            "epoch_seconds": r.epoch_time,
            "comm_seconds": r.comm_time,
        })
    return points


def test_schemes_benchmark():
    results = [(cell, *tune_cell(cell)) for cell in CELLS]
    sweep = staleness_sweep(CELLS[2])

    families = set()
    rows = []
    payload_cells = {}
    for cell, report, fixed in results:
        families.update(fixed)
        picked = report.candidate.strategy
        pick_cost = report.best.cost
        others = {s: c for s, c in fixed.items() if s != picked}
        runner_up = min(others, key=others.get)
        rows.append([
            cell["name"], cell["want"], report.candidate.label(),
            f"{pick_cost * 1e3:.4f}",
            f"{runner_up} ({others[runner_up] * 1e3:.4f})",
            f"{report.space_size}/{report.evaluations}",
        ])
        payload_cells[cell["name"]] = {
            "graph": list(cell["graph"]),
            "topology": list(cell["topology"]),
            "layers": cell["layers"],
            "feature_size": cell["feature_size"],
            "exact_aggregation": cell["exact"],
            "want": cell["want"],
            "picked": report.candidate.config(),
            "pick_is_expected": picked == cell["want"],
            "picked_epoch_seconds": pick_cost,
            "runner_up": runner_up,
            "runner_up_epoch_seconds": others[runner_up],
            "space_size": report.space_size,
            "evaluations": report.evaluations,
            "driver": report.driver,
            "fixed": fixed,
        }

    comm0 = sweep[0]["comm_seconds"]
    comm4 = sweep[-1]["comm_seconds"]
    write_table(
        "schemes",
        "Widened tuner space: each new scheme family wins its cell",
        ["cell", "expected", "picked", "pick(ms)", "runner-up(ms)",
         "space/evals"],
        rows,
        notes=(
            f"{len(families)} scheme families priced: "
            f"{', '.join(sorted(families))}. distgnn staleness sweep on "
            f"{CELLS[2]['name']}: comm {comm0 * 1e3:.3f}ms (s=0) -> "
            f"{comm4 * 1e3:.3f}ms (s=4, {comm0 / comm4:.2f}x amortised)."
        ),
    )
    emit_json("schemes", {
        "model": "gcn",
        "families_priced": sorted(families),
        "families_priced_count": len(families),
        "cells": payload_cells,
        "staleness_sweep": {
            "cell": CELLS[2]["name"],
            "scheme": "distgnn-delayed",
            "points": sweep,
            "amortisation_s4": comm0 / comm4,
        },
    })

    # Acceptance: the widened space prices >= 6 scheme families...
    assert len(families) >= 6, f"only priced {sorted(families)}"
    # ...each new scheme is picked where it is genuinely cheapest...
    for cell, report, fixed in results:
        picked = report.candidate.strategy
        assert picked == cell["want"], (
            f"{cell['name']}: expected {cell['want']}, picked {picked}"
        )
        # ...and the tuned pick never loses to any fixed scheme.
        assert report.best.cost <= min(fixed.values()) + 1e-12, cell["name"]
    # Staleness ladder: comm time amortises monotonically, ~1/(s+1).
    comms = [p["comm_seconds"] for p in sweep]
    assert all(a >= b for a, b in zip(comms, comms[1:])), comms
    assert comm0 / comm4 > 3.0, f"amortisation only {comm0 / comm4:.2f}x"
