"""Figure 10: cost-model estimate vs actual communication time.

Paper: varying the communication volume (transmitting only a subset of
the vertices), the measured graphAllgather time is a *linear* function
of the model-estimated cost, with divergence from the fitted line below
5 % in most cases.  The linearity is what lets SPST trust the model.
"""

import numpy as np
import pytest

from repro.core.spst import SPSTPlanner
from repro.simulator.executor import PlanExecutor

from benchmarks.conftest import get_workload, write_table

FRACTIONS = np.linspace(0.25, 1.0, 7)


class _SubsetRelation:
    """A relation view keeping only a fraction of each class's payload."""

    def __init__(self, relation, fraction: float, seed: int = 0):
        from repro.core.relation import MulticastClass

        rng = np.random.default_rng(seed)
        self.num_devices = relation.num_devices
        self.classes = []
        for cls in relation.classes:
            keep = max(1, int(round(cls.size * fraction)))
            chosen = rng.choice(cls.vertices, size=keep, replace=False)
            self.classes.append(
                MulticastClass(cls.source, cls.destinations, np.sort(chosen))
            )


def measure(dataset):
    w = get_workload(dataset, "gcn", 8)
    bpu = w.boundary_bytes()[0]
    executor = PlanExecutor(w.topology)
    planner = SPSTPlanner(w.topology, seed=0)
    points = []
    for fraction in FRACTIONS:
        subset = _SubsetRelation(w.relation, float(fraction))
        plan = planner.plan(subset)
        estimated = plan.estimated_cost(bpu)
        actual = executor.execute(plan, bpu).total_time
        points.append((estimated, actual))
    return points


@pytest.mark.parametrize("dataset", ["web-google", "reddit"])
def test_fig10_cost_model_accuracy(dataset, benchmark):
    points = measure(dataset)
    est = np.array([p[0] for p in points])
    act = np.array([p[1] for p in points])

    # Least-squares line and its residuals.
    slope, intercept = np.polyfit(est, act, 1)
    fitted = slope * est + intercept
    rel_resid = np.abs(act - fitted) / act
    corr = float(np.corrcoef(est, act)[0, 1])

    write_table(
        f"fig10_cost_model_accuracy_{dataset}",
        f"Figure 10 ({dataset}): estimated cost vs simulated time",
        ["Volume fraction", "Estimated (us)", "Actual (us)", "|resid|"],
        [
            [f"{f:.2f}", f"{e * 1e6:.2f}", f"{a * 1e6:.2f}",
             f"{r:.1%}"]
            for f, e, a, r in zip(FRACTIONS, est, act, rel_resid)
        ],
        notes=(
            f"pearson r = {corr:.4f}; max relative divergence from the "
            f"fitted line = {rel_resid.max():.1%} (paper: <5% in most cases)"
        ),
    )

    assert corr > 0.98, f"estimate/actual correlation only {corr:.3f}"
    assert np.median(rel_resid) < 0.05
    assert rel_resid.max() < 0.15
    # More volume means more time (sanity of the sweep).
    assert act[-1] > act[0]

    benchmark.pedantic(lambda: measure(dataset)[:1], rounds=1, iterations=1)
