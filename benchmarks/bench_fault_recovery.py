"""Fault-recovery overhead: what chaos costs, per recovery policy.

Not a paper figure — DGCL assumes a fault-free cluster — but the
robustness layer's headline experiment: train the same GCN workload
under increasing fault rates and measure (a) the simulated epoch-time
overhead versus the fault-free run and (b) which recovery policies
(retry / repair / degrade / rollback) carried the load.

Invariants asserted:

* a zero fault rate costs exactly nothing and leaves the fault log
  empty (the chaos layer is pay-for-what-you-break);
* every chaotic run still converges to the fault-free model —
  bit-identical while the partition survives, allclose to the
  single-GPU reference after a crash forces a repartition;
* overhead grows with the fault rate.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.faults.spec import DeviceCrash
from repro.gnn import ResilientTrainer, build_gcn
from repro.graph.generators import rmat
from repro.topology import dgx1

from benchmarks.conftest import write_table

EPOCHS = 4
CHECKPOINT_EVERY = 2
RATES = [0.0, 1.0, 2.0, 4.0]


def _workload():
    g = rmat(300, 2200, seed=4)
    rng = np.random.default_rng(3)
    features = rng.standard_normal((g.num_vertices, 16)).astype(np.float32)
    labels = rng.integers(0, 4, g.num_vertices)
    return g, features, labels


def _model():
    return build_gcn(16, 8, 4, seed=7)


def _connection_names(topology):
    return sorted({c.name for link in topology.links for c in link.connections})


def _run(fault_plan):
    g, features, labels = _workload()
    trainer = ResilientTrainer(
        g, dgx1(), _model(), features, labels,
        fault_plan=fault_plan, checkpoint_every=CHECKPOINT_EVERY,
    )
    report = trainer.train(EPOCHS)
    return trainer, report


def test_fault_recovery_overhead(benchmark):
    topo = dgx1()
    baseline_trainer, baseline = _run(None)
    assert baseline.log.is_empty, "fault-free run must leave an empty log"
    assert baseline.overhead_seconds == pytest.approx(0.0, abs=1e-12)
    reference_logits = baseline_trainer.gather_logits()
    horizon = baseline.total_seconds

    rows = []
    overheads = []
    for rate in RATES:
        if rate == 0.0:
            plan = None
        else:
            plan = FaultPlan.random(
                seed=17 + int(rate),
                horizon=horizon,
                devices=list(range(topo.num_devices)),
                connections=_connection_names(topo),
                stall_rate=rate,
                degrade_rate=2 * rate,
                drop_rate=2 * rate,
            )
        trainer, report = _run(plan)
        # Chaos that never kills a device keeps the partition, so the
        # trained model is bit-identical to the fault-free run.
        assert np.array_equal(trainer.gather_logits(), reference_logits)
        policies = report.policy_counts()
        overheads.append(report.overhead_ratio)
        rows.append([
            f"{rate:.0f}",
            f"{report.total_seconds * 1e3:.3f}",
            f"{report.overhead_ratio * 100:.1f}%",
            policies["retry"], policies["repair"], policies["degrade"],
            report.rollbacks,
        ])

    # One permanent crash mid-run: rollback + repartition, and the final
    # model still matches the reference up to float reduction order.
    crash_plan = FaultPlan(
        [DeviceCrash(device=3, time=float(horizon * 0.55))], seed=99
    )
    trainer, report = _run(crash_plan)
    assert report.rollbacks >= 1 and report.lost_devices == [3]
    assert np.allclose(
        trainer.gather_logits(), reference_logits, rtol=1e-4, atol=1e-5
    )
    policies = report.policy_counts()
    rows.append([
        "crash",
        f"{report.total_seconds * 1e3:.3f}",
        f"{report.overhead_ratio * 100:.1f}%",
        policies["retry"], policies["repair"], policies["degrade"],
        report.rollbacks,
    ])

    write_table(
        "fault_recovery_overhead",
        f"Fault-recovery overhead, GCN on rmat-300 twin, {EPOCHS} epochs "
        f"(checkpoint every {CHECKPOINT_EVERY})",
        ["fault rate", "epoch total (ms)", "overhead", "retries",
         "repairs", "degrades", "rollbacks"],
        rows,
        notes=(
            "Fault rate = expected events per kind over the run horizon "
            "(stalls x1, degrades x2, flag drops x2).  Zero rate costs "
            "zero: the chaos layer only charges for injected faults.  "
            "The crash row loses GPU 3 permanently: the trainer rolls "
            "back to its checkpoint, repartitions over 7 survivors and "
            "re-dispatches — numerics stay within float reduction noise "
            "of the fault-free model."
        ),
    )

    assert overheads[0] == pytest.approx(0.0, abs=1e-9)
    assert overheads[-1] > 0.0, "heavy chaos must cost simulated time"
    assert max(overheads) == pytest.approx(max(overheads[1:]), rel=1e-9)

    benchmark.pedantic(lambda: _run(crash_plan), rounds=1, iterations=1)
