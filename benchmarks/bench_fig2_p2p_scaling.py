"""Figure 2: peer-to-peer communication overhead vs GPU count.

Paper: for a 2-layer GCN on Web-Google and Reddit, communication time
grows rapidly with GPU count even though per-GPU volume shrinks —
taking >50 % of the epoch at 8 GPUs and >90 % at 16 (slow IB) — because
aggregate volume and contention both grow.
"""

import pytest

from repro.baselines import evaluate_scheme

from benchmarks.conftest import get_workload, ms, write_table

GPU_COUNTS = (2, 4, 8, 16)
BYTES_PER_FLOAT = 4


def per_gpu_volume_mb(workload) -> float:
    """Average embedding bytes a GPU *receives* per epoch (the paper's
    dashed 'Commu. Volume' series)."""
    rel = workload.relation
    dims = workload.model.layer_dims[: workload.num_layers]
    per_boundary = sum(dims) * BYTES_PER_FLOAT
    total = sum(
        rel.remote_vertices[d].size for d in range(rel.num_devices)
    ) * per_boundary
    return total / rel.num_devices / 1e6


@pytest.mark.parametrize("dataset", ["web-google", "reddit"])
def test_fig2_p2p_overhead_grows(dataset, benchmark):
    rows = []
    comm_times = {}
    fractions = {}
    for n in GPU_COUNTS:
        w = get_workload(dataset, "gcn", n)
        r = evaluate_scheme(w, scheme="peer-to-peer")
        assert r.ok
        comm_times[n] = r.comm_time
        fractions[n] = r.comm_time / r.epoch_time
        rows.append([
            n, ms(r.compute_time), ms(r.comm_time),
            f"{100 * fractions[n]:.0f}%", f"{per_gpu_volume_mb(w):.2f}",
        ])
    write_table(
        f"fig2_p2p_scaling_{dataset}",
        f"Figure 2 ({dataset}): peer-to-peer communication vs GPU count",
        ["GPUs", "Compute (ms)", "Comm (ms)", "Comm share", "Volume/GPU (MB)"],
        rows,
        notes="2-layer GCN, METIS-style partition, peer-to-peer transfers.",
    )

    # Shape claims: communication grows with the GPU count beyond the
    # NVLink-clique regime and dominates on two machines.
    assert comm_times[8] > comm_times[4]
    assert comm_times[16] > comm_times[8]
    assert fractions[16] > fractions[4]
    assert fractions[16] > 0.5
    # Per-GPU volume shrinks (or saturates, for the dense twin whose
    # remote set is already the whole graph) even as total time grows.
    w4, w16 = get_workload(dataset, "gcn", 4), get_workload(dataset, "gcn", 16)
    if dataset == "web-google":
        assert per_gpu_volume_mb(w16) < per_gpu_volume_mb(w4)
    else:
        assert per_gpu_volume_mb(w16) < 1.5 * per_gpu_volume_mb(w4)

    w = get_workload(dataset, "gcn", 8)
    benchmark.pedantic(
        lambda: evaluate_scheme(w, scheme="peer-to-peer"), rounds=3, iterations=1
    )
