"""GNN depth ablation: where replication stops being viable.

§3 of the paper argues replication "renders inapplicable for deeper GNN
models with more layers" because the K-hop closure explodes (Figure 4),
while partitioned training's communication only grows linearly with the
layer count.  This bench sweeps K = 1, 2, 3 on Web-Google (the graph
where replication is *competitive* at K = 2) and locates the crossover.
"""

import pytest

from repro.baselines import Workload, evaluate_scheme
from repro.topology import dgx1

from benchmarks.conftest import ms, shared_topology, write_table


def evaluate_depths():
    results = {}
    for layers in (1, 2, 3):
        w = Workload("web-google", "gcn", shared_topology(8),
                     num_layers=layers)
        for scheme in ("dgcl", "replication"):
            results[(layers, scheme)] = evaluate_scheme(w, scheme=scheme)
    return results


def test_depth_scaling(benchmark):
    results = evaluate_depths()
    rows = []
    for layers in (1, 2, 3):
        dgcl = results[(layers, "dgcl")]
        rep = results[(layers, "replication")]
        rows.append([
            layers,
            ms(dgcl.epoch_time) if dgcl.ok else dgcl.status,
            ms(rep.epoch_time) if rep.ok else rep.status,
            f"{rep.epoch_time / dgcl.epoch_time:.2f}x"
            if dgcl.ok and rep.ok else "-",
        ])
    write_table(
        "depth_scaling",
        "Depth ablation: DGCL vs Replication on Web-Google, 8 GPUs",
        ["Layers", "DGCL (ms)", "Replication (ms)", "repl/DGCL"],
        rows,
        notes="Replication recomputes the K-hop closure; its penalty "
              "grows with depth while DGCL's communication grows linearly.",
    )

    # DGCL runs at every depth.
    for layers in (1, 2, 3):
        assert results[(layers, "dgcl")].ok
    # The replication penalty grows strictly with depth...
    ratios = []
    for layers in (1, 2, 3):
        rep = results[(layers, "replication")]
        dgcl = results[(layers, "dgcl")]
        if rep.ok:
            ratios.append(rep.epoch_time / dgcl.epoch_time)
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    # ...and by 3 layers replication clearly loses (or OOMs).
    rep3 = results[(3, "replication")]
    assert (not rep3.ok) or rep3.epoch_time > 1.5 * results[(3, "dgcl")].epoch_time

    w = Workload("web-google", "gcn", shared_topology(8), num_layers=3)
    benchmark.pedantic(lambda: evaluate_scheme(w, scheme="dgcl"), rounds=1,
                       iterations=1)
