"""Shared JSON artifact emitter for the benchmark suite.

Text tables (``conftest.write_table``) are for humans; CI jobs and
trend dashboards want machine-readable artifacts.  :func:`emit_json`
writes one ``BENCH_<name>.json`` document under
``benchmarks/results/`` with a tiny stable envelope (name + schema
version + payload), prints the path, and returns it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from benchmarks.conftest import RESULTS_DIR

#: Version of the artifact envelope (payload schemas are per-benchmark).
BENCH_JSON_VERSION = 1


def emit_json(name: str, payload: Dict[str, Any]) -> Path:
    """Write ``benchmarks/results/BENCH_<name>.json`` and return the path.

    ``payload`` must be JSON-serialisable; the envelope adds the
    benchmark name and the artifact format version.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    doc = {
        "benchmark": name,
        "format": BENCH_JSON_VERSION,
        "payload": payload,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return path
