"""Figure 8: GCN on Reddit with 1-16 GPUs, all four schemes.

Paper shapes reproduced here:

* DGCL and peer-to-peer have (near-)identical communication time with
  4 or fewer GPUs — those GPUs form an NVLink clique, so there is
  nothing to plan around;
* from 8 GPUs on, DGCL's communication time is clearly shorter;
* at 16 GPUs (two machines over IB) the gap is largest — the paper
  reports p2p at 3.94x DGCL per epoch;
* Replication's epoch time stays roughly flat (it recomputes nearly
  the whole dense graph on every GPU) and is beaten by DGCL everywhere;
* Swap is single-machine only (no 16-GPU bar, like the paper).
"""

import pytest

from repro.baselines import SCHEMES, evaluate_scheme

from benchmarks.conftest import get_workload, ms, write_table

GPU_COUNTS = (1, 2, 4, 8, 16)


def collect():
    results = {}
    for n in GPU_COUNTS:
        w = get_workload("reddit", "gcn", n)
        for scheme in SCHEMES:
            results[(n, scheme)] = evaluate_scheme(w, scheme=scheme)
    return results


def test_fig8_gcn_reddit_scaling(benchmark):
    results = collect()
    rows = []
    for n in GPU_COUNTS:
        row = [n]
        for scheme in SCHEMES:
            r = results[(n, scheme)]
            row.append(
                f"{r.ms():.3f} ({r.ms('comm_time'):.3f})" if r.ok else r.status
            )
        rows.append(row)
    write_table(
        "fig8_gcn_reddit_scaling",
        "Figure 8: GCN on Reddit — epoch ms (comm ms) by GPU count",
        ["GPUs"] + list(SCHEMES),
        rows,
    )

    # NVLink-clique regime: DGCL == p2p communication within 15 %.
    for n in (2, 4):
        dgcl, p2p = results[(n, "dgcl")], results[(n, "peer-to-peer")]
        assert dgcl.comm_time == pytest.approx(p2p.comm_time, rel=0.5)
        assert abs(dgcl.epoch_time - p2p.epoch_time) < 0.15 * p2p.epoch_time

    # Complex-connection regime: DGCL clearly ahead.
    for n in (8, 16):
        dgcl, p2p = results[(n, "dgcl")], results[(n, "peer-to-peer")]
        assert dgcl.comm_time < 0.5 * p2p.comm_time

    # The 16-GPU gap is the largest (cross-machine IB).
    gap16 = results[(16, "peer-to-peer")].epoch_time / results[(16, "dgcl")].epoch_time
    gap8 = results[(8, "peer-to-peer")].epoch_time / results[(8, "dgcl")].epoch_time
    assert gap16 > gap8 > 1.0
    assert gap16 > 2.0  # paper: 3.94x

    # Replication stays roughly flat and loses everywhere it runs.
    rep = [results[(n, "replication")].epoch_time for n in (2, 4, 8, 16)]
    assert max(rep) < 1.3 * min(rep)
    for n in (2, 4, 8, 16):
        assert results[(n, "dgcl")].epoch_time < results[(n, "replication")].epoch_time

    # Swap is unsupported across machines, exactly like the paper.
    assert results[(16, "swap")].status == "unsupported"

    w = get_workload("reddit", "gcn", 16)
    benchmark.pedantic(lambda: evaluate_scheme(w, scheme="dgcl"), rounds=3,
                       iterations=1)
