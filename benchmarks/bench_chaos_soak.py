"""Chaos soak throughput: the cost of randomized fault campaigns.

The soak harness is only useful if a meaningful campaign fits in CI
minutes, so this benchmark measures what one seed costs end to end
(generate, run twice for the determinism oracle, score all oracles) and
what the ddmin shrinker pays to minimize a failing schedule — and
asserts the honest default distribution actually passes, which is the
harness's whole point.
"""

import time

from repro.chaos import SoakConfig, SoakRunner, shrink_plan
from repro.faults import RetryOnlyPolicy

from benchmarks.conftest import write_table

SEEDS = 10


def test_chaos_soak_throughput(benchmark):
    runner = SoakRunner(SoakConfig())

    start = time.perf_counter()
    report = runner.run(SEEDS)
    soak_wall = time.perf_counter() - start
    assert report.passed, report.summary()

    events = sum(r.events for r in report.results)

    # A broken policy manufactures a failure; measure the shrink cost.
    broken = SoakRunner(SoakConfig(
        mix={"link-loss": 4.0},
        density=9.0,
        policy_factory=lambda: RetryOnlyPolicy(max_retries=2),
    ))
    failing_plan = None
    for seed in range(40):
        plan = broken.generator.sample(seed)
        if len(plan) < 8:
            continue
        violations, _ = broken.check_plan(plan)
        if violations:
            failing_plan = plan
            oracles = {v.oracle for v in violations}
            break
    assert failing_plan is not None

    def predicate(candidate):
        vs, _ = broken.check_plan(candidate)
        return any(v.oracle in oracles for v in vs)

    start = time.perf_counter()
    shrunk = shrink_plan(failing_plan, predicate, max_runs=150)
    shrink_wall = time.perf_counter() - start
    assert shrunk.events <= 2

    write_table(
        "chaos_soak",
        f"Chaos soak: {SEEDS} seeds, default distribution, 8 GPUs",
        ["Metric", "Value"],
        [
            ["Seeds passed", f"{SEEDS}/{SEEDS}"],
            ["Fault events executed", events],
            ["Soak wall (s)", f"{soak_wall:.2f}"],
            ["Per seed (ms)", f"{soak_wall / SEEDS * 1e3:.0f}"],
            ["Shrink input (events)", shrunk.original_events],
            ["Shrink output (events)", shrunk.events],
            ["Shrink predicate runs", shrunk.runs],
            ["Shrink wall (s)", f"{shrink_wall:.2f}"],
        ],
        notes="Each seed runs the hardened protocol twice (the "
              "determinism oracle compares the pair). The shrink row "
              "minimizes a failure manufactured with the broken-policy "
              "test hook; the honest configuration has no failures to "
              "shrink.",
    )

    def one_seed():
        return runner.run_seed(0)

    benchmark.pedantic(one_seed, rounds=3, iterations=1)
