"""Per-batch communication planning: cold vs incremental vs cache-warm.

The sampled-training pipeline plans communication for every mini-batch,
so sustained plans/sec is the number that decides whether mini-batch
DGCL is usable.  Three modes over the identical batch stream:

* **cold** — every batch runs the full SPST planner (the naive
  baseline: no cache, no donor patching);
* **incremental** — each batch patches the previous batch's plan
  through ``incremental_replan`` (cold only for the first batch and
  the 1.5x cost-regression fallbacks);
* **warm** — every batch is an exact fingerprint hit in a pre-filled
  :class:`~repro.autotune.cache.PlanCache`.

Emits ``BENCH_sampling.json`` (plans/sec per mode, batch planning
latency p50/p99, the warm/incremental speedups over cold, and the
gradient-parity bit) for the perf-regression gate in
``benchmarks/compare.py``.  The speedup claims are asserted here too:
a patched or cached batch must beat cold planning outright.
"""

import numpy as np

from repro.autotune import PlanCache
from repro.gnn import MiniBatchOracle, MiniBatchTrainer, build_gcn
from repro.graph.datasets import synthetic_features, synthetic_labels
from repro.graph.generators import rmat
from repro.partition import partition
from repro.sampling import BatchPlanner, NeighborSampler, SeedLoader
from repro.topology import topology_for_gpu_count

from benchmarks.conftest import write_table
from benchmarks.emit_json import emit_json

NUM_VERTICES, NUM_EDGES = 400, 3000
GPUS = 4
BATCH_SIZE = 64
FANOUTS = (5, 5)
SEED = 1


def _workload():
    graph = rmat(NUM_VERTICES, NUM_EDGES, seed=4)
    topology = topology_for_gpu_count(GPUS)
    assignment = partition(graph, GPUS, seed=0).assignment
    loader = SeedLoader(graph, BATCH_SIZE, seed=SEED)
    sampler = NeighborSampler(graph, FANOUTS, seed=SEED)
    batches = [
        sampler.sample(seeds, i) for i, seeds in enumerate(loader.batches(0))
    ]
    return graph, topology, assignment, batches


def _mode_cell(planner, batches):
    """Plan the stream; return the throughput/latency cell."""
    planned = planner.plan_stream(batches)
    walls = np.array([p.wall_seconds for p in planned])
    stats = planner.stats
    return {
        "batches": stats.batches,
        "by_source": dict(sorted(stats.by_source.items())),
        "plans_per_second": round(stats.plans_per_second, 3),
        "p50_batch_ms": round(float(np.percentile(walls, 50)) * 1e3, 4),
        "p99_batch_ms": round(float(np.percentile(walls, 99)) * 1e3, 4),
    }


def _gradient_parity(graph, topology, assignment):
    """Distributed vs single-device oracle over one sampled epoch."""
    features = synthetic_features(graph, 6, seed=0)
    labels = synthetic_labels(graph, 4, seed=0)
    loader = SeedLoader(graph, BATCH_SIZE, seed=SEED)
    sampler = NeighborSampler(graph, FANOUTS, seed=SEED)
    trainer = MiniBatchTrainer(
        build_gcn(6, 8, 4, seed=7), features, labels,
        sampler, loader, BatchPlanner(graph, assignment, topology),
    )
    trainer.train(1)
    oracle = MiniBatchOracle(build_gcn(6, 8, 4, seed=7), features, labels)
    for i, seeds in enumerate(loader.batches(0)):
        oracle.run_batch(sampler.sample(seeds, batch_index=i))
    return bool(np.allclose(
        trainer.loss_history, oracle.loss_history, rtol=1e-4, atol=1e-6
    ))


def test_per_batch_planning_throughput(benchmark):
    graph, topology, assignment, batches = _workload()

    cold = _mode_cell(
        BatchPlanner(graph, assignment, topology, incremental=False),
        batches,
    )
    incremental = _mode_cell(
        BatchPlanner(graph, assignment, topology), batches
    )

    # Warm: fill the cache with one pass, then measure pure hits.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        cache = PlanCache(tmp)
        BatchPlanner(graph, assignment, topology,
                     plan_cache=cache).plan_stream(batches)
        warm_planner = BatchPlanner(graph, assignment, topology,
                                    plan_cache=cache)
        warm = _mode_cell(warm_planner, batches)
        warm_hits = warm["by_source"].get("cache", 0)

    assert cold["by_source"] == {"planned": cold["batches"]}
    assert warm_hits == warm["batches"], "warm pass must be pure cache hits"
    assert incremental["by_source"].get("patched", 0) > 0

    # The headline claim: reuse beats cold per-batch SPST outright.
    speedup_incremental = (
        incremental["plans_per_second"] / cold["plans_per_second"]
    )
    speedup_warm = warm["plans_per_second"] / cold["plans_per_second"]
    assert speedup_incremental > 1.0, (
        f"incremental patching slower than cold planning "
        f"({speedup_incremental:.2f}x)"
    )
    assert speedup_warm > 1.0, (
        f"cache-warm replay slower than cold planning "
        f"({speedup_warm:.2f}x)"
    )

    parity = _gradient_parity(graph, topology, assignment)
    assert parity, "mini-batch gradients diverged from the oracle"

    rows = [
        [name, cell["batches"], cell["plans_per_second"],
         cell["p50_batch_ms"], cell["p99_batch_ms"],
         "; ".join(f"{k}={v}" for k, v in cell["by_source"].items())]
        for name, cell in (
            ("cold", cold), ("incremental", incremental), ("warm", warm)
        )
    ]
    write_table(
        "sampling_planning",
        f"Per-batch planning over {len(batches)} sampled batches "
        f"({NUM_VERTICES}-vertex rmat, batch={BATCH_SIZE}, "
        f"fanouts={','.join(map(str, FANOUTS))}, {GPUS} GPUs)",
        ["mode", "batches", "plans/s", "p50 (ms)", "p99 (ms)", "sources"],
        rows,
        notes=(
            "Cold replans every batch with full SPST; incremental "
            "patches the previous batch's trees through "
            "incremental_replan (1.5x cost-regression fallback); warm "
            "replays exact fingerprint hits from the plan cache.  "
            "Gradient parity with the single-device oracle is asserted "
            "on the same stream."
        ),
    )

    emit_json("sampling", {
        "graph": f"rmat-{NUM_VERTICES}-{NUM_EDGES}",
        "gpus": GPUS,
        "batch_size": BATCH_SIZE,
        "fanouts": list(FANOUTS),
        "modes": {
            "cold": cold,
            "incremental": incremental,
            "warm": warm,
        },
        "speedup": {
            "incremental_vs_cold": round(speedup_incremental, 3),
            "warm_vs_cold": round(speedup_warm, 3),
        },
        "warm_cache_hits": warm_hits,
        "gradient_parity": parity,
    })

    benchmark.pedantic(
        lambda: BatchPlanner(graph, assignment, topology).plan_stream(
            batches
        ),
        rounds=1, iterations=1,
    )
