"""Table 9: atomic vs non-atomic gradient aggregation in the backward pass.

Paper (hidden 128, 8 GPUs, ms): non-atomic sub-stage execution beats
atomic accumulation by 1.3-1.6x on every dataset, because serialising
each receiver's senders into sub-stages is cheaper than paying the
atomicAdd penalty on every received gradient byte.
"""

import pytest

from repro.simulator.compute import ComputeModel
from repro.simulator.executor import PlanExecutor

from benchmarks.conftest import get_workload, ms, write_table

DATASETS = ["reddit", "com-orkut", "web-google", "wiki-talk"]
PAPER = {  # (atomic, non-atomic) ms
    "reddit": (1.72, 1.28), "com-orkut": (14.3, 9.16),
    "web-google": (1.11, 0.83), "wiki-talk": (0.99, 0.71),
}
HIDDEN_BYTES = 128 * 4


def backward_times(dataset):
    """(atomic, non-atomic) time of one backward graphAllgather."""
    w = get_workload(dataset, "gcn", 8)
    plan = w.spst_plan
    executor = PlanExecutor(w.topology)
    model = ComputeModel()
    tuples = plan.backward_tuples()
    received = {}
    for t in tuples:
        received[t.dst] = received.get(t.dst, 0.0) + t.units * HIDDEN_BYTES

    def total(atomic: bool) -> float:
        transfer = executor.execute_backward(
            tuples, HIDDEN_BYTES, atomic=atomic
        ).total_time
        reduce_time = max(
            model.gradient_reduce_seconds(b, atomic=atomic)
            for b in received.values()
        )
        return transfer + reduce_time

    return total(True), total(False)


def test_table9_nonatomic(benchmark):
    rows = []
    measured = {}
    for dataset in DATASETS:
        atomic, nonatomic = backward_times(dataset)
        measured[dataset] = (atomic, nonatomic)
        rows.append([
            dataset, ms(atomic), ms(nonatomic),
            f"{atomic / nonatomic:.2f}x",
            f"{PAPER[dataset][0] / PAPER[dataset][1]:.2f}x",
        ])
    write_table(
        "table9_nonatomic",
        "Table 9: backward graphAllgather (ms), hidden 128, 8 GPUs",
        ["Dataset", "Atomic", "Non-atomic", "speedup", "paper speedup"],
        rows,
        notes="Non-atomic = sub-staged receives (§6.2), no atomicAdd penalty.",
    )
    for dataset, (atomic, nonatomic) in measured.items():
        assert nonatomic < atomic, dataset
        # in the paper's 1.2-1.7x window, loosely
        assert 1.05 < atomic / nonatomic < 3.0, dataset

    benchmark.pedantic(lambda: backward_times("web-google"), rounds=3,
                       iterations=1)
