"""Beyond the evaluation trio: GraphSAGE and GAT on the DGCL stack.

The paper's intro names GraphSAGE and GAT among the GNN families DGCL
serves; its evaluation sticks to GCN/CommNet/GIN.  This bench closes the
loop: both extra models run through the identical planning/execution
pipeline, and the paper's structural claims — one plan serves every
model; DGCL's win shrinks as models get compute-heavier — extend to them.
"""

import pytest

from repro.baselines import evaluate_scheme

from benchmarks.conftest import get_workload, write_table

MODELS = ["gcn", "sage", "gat", "gin"]
DATASET = "web-google"


def evaluate_all():
    results = {}
    for model in MODELS:
        w = get_workload(DATASET, model, 8)
        for scheme in ("dgcl", "peer-to-peer"):
            results[(model, scheme)] = evaluate_scheme(w, scheme=scheme)
    return results


def test_extended_models(benchmark):
    results = evaluate_all()
    rows = []
    for model in MODELS:
        dgcl = results[(model, "dgcl")]
        p2p = results[(model, "peer-to-peer")]
        rows.append([
            model,
            f"{dgcl.ms():.3f} ({dgcl.ms('comm_time'):.3f})",
            f"{p2p.ms():.3f} ({p2p.ms('comm_time'):.3f})",
            f"{p2p.epoch_time / dgcl.epoch_time:.2f}x",
        ])
    write_table(
        "extended_models",
        f"Extended models on {DATASET}, 8 GPUs: epoch ms (comm ms)",
        ["Model", "DGCL", "Peer-to-peer", "p2p/DGCL"],
        rows,
        notes="GraphSAGE and single-head GAT reuse the GCN plan "
              "unchanged (plans are model-independent).",
    )

    # One plan serves every model: the communication time is identical
    # across models (same boundaries, same tables).
    comm_times = {
        results[(m, "dgcl")].comm_time for m in MODELS
        if results[(m, "dgcl")].ok
    }
    assert max(comm_times) - min(comm_times) < 1e-9

    # DGCL never loses, and the epoch-time win shrinks as compute grows.
    gains = {}
    for model in MODELS:
        dgcl, p2p = results[(model, "dgcl")], results[(model, "peer-to-peer")]
        assert dgcl.ok and p2p.ok
        assert dgcl.epoch_time <= p2p.epoch_time * 1.001, model
        gains[model] = p2p.epoch_time / dgcl.epoch_time
    assert gains["gin"] < gains["gcn"]

    # GAT pays per-edge attention math: heavier than GCN, per §7's
    # complexity ordering extended.
    assert (
        results[("gat", "dgcl")].compute_time
        > results[("gcn", "dgcl")].compute_time
    )

    w = get_workload(DATASET, "gat", 8)
    benchmark.pedantic(lambda: evaluate_scheme(w, scheme="dgcl"), rounds=3,
                       iterations=1)
