"""Table 6: graphAllgather time on the PCIe-only (no NVLink) box.

Paper (ms, feature 128, 8x 1080-Ti): DGCL beats Swap and Peer-to-peer
on every graph, but its edge over p2p is *smaller* than on the NVLink
machine — without fast links to exploit, the remaining gains come from
contention avoidance and load balancing alone.
"""

import pytest

from repro.baselines import Workload
from repro.baselines.strategies import _planned_comm_time
from repro.graph.datasets import DATASETS
from repro.simulator.executor import PlanExecutor, SwapExecutor
from repro.topology import pcie_only

from benchmarks.conftest import ms, write_table

FEATURE_BYTES = 128 * 4
PAPER = {  # ms: (dgcl, swap, p2p)
    "reddit": (14.3, 14.5, 17.9),
    "com-orkut": (128, 1220, 179),
    "web-google": (7.84, 116, 8.72),
    "wiki-talk": (5.86, 317, 8.51),
}

_WORKLOADS = {}


def workload(dataset):
    if dataset not in _WORKLOADS:
        _WORKLOADS[dataset] = Workload(dataset, "gcn", pcie_only())
    return _WORKLOADS[dataset]


def allgather_times(dataset):
    """One graphAllgather (feature width 128) per scheme, seconds."""
    w = workload(dataset)
    executor = PlanExecutor(w.topology)
    dgcl = executor.execute(w.spst_plan, FEATURE_BYTES).total_time
    p2p = executor.execute(w.p2p_plan, FEATURE_BYTES).total_time
    swap = SwapExecutor(w.topology).execute(
        w.relation, FEATURE_BYTES, dump_bytes_per_unit=FEATURE_BYTES
    ).total_time
    return dgcl, swap, p2p


def test_table6_pcie_only(benchmark):
    rows = []
    measured = {}
    for dataset in DATASETS:
        dgcl, swap, p2p = allgather_times(dataset)
        measured[dataset] = (dgcl, swap, p2p)
        rows.append([dataset, ms(dgcl), ms(swap), ms(p2p)])
    write_table(
        "table6_pcie_only",
        "Table 6: one graphAllgather (ms), PCIe-only box, feature 128",
        ["Dataset", "DGCL", "Swap", "Peer-to-peer"],
        rows,
        notes="8 GTX-1080-Ti GPUs, no NVLink (paper's second testbed).",
    )

    for dataset, (dgcl, swap, p2p) in measured.items():
        # DGCL <= p2p and swap on every graph.
        assert dgcl <= p2p * 1.02, dataset
        assert dgcl <= swap * 1.02, dataset
    # Swap is clearly worse than p2p on the three larger graphs, and
    # dramatically worse than DGCL on the sparse ones.
    for dataset in ("com-orkut", "web-google", "wiki-talk"):
        dgcl, swap, p2p = measured[dataset]
        assert swap > 1.5 * p2p, dataset
    for dataset in ("web-google", "wiki-talk"):
        dgcl, swap, _ = measured[dataset]
        assert swap > 4 * dgcl, dataset

    # The DGCL-over-p2p edge here is smaller than on the NVLink box.
    from benchmarks.conftest import get_workload

    nvlink_w = get_workload("web-google", "gcn", 8)
    nvlink_exec = PlanExecutor(nvlink_w.topology)
    nvlink_gain = (
        nvlink_exec.execute(nvlink_w.p2p_plan, FEATURE_BYTES).total_time
        / nvlink_exec.execute(nvlink_w.spst_plan, FEATURE_BYTES).total_time
    )
    dgcl, _, p2p = measured["web-google"]
    pcie_gain = p2p / dgcl
    assert pcie_gain < nvlink_gain

    benchmark.pedantic(lambda: allgather_times("web-google"), rounds=3,
                       iterations=1)
