"""Online inference serving: latency, goodput and shedding under load.

Not a paper figure — DGCL targets training — but the serving control
plane's headline experiment, in three claims:

* under the healthy arrival mixes (Poisson, bursty) every admitted
  request meets its SLO and all shedding is typed (zero silent drops);
* under the pinned 2x overload burst the degradation ladder and the
  autoscaler bring the windowed p99 back inside the SLO by the end of
  the horizon while goodput stays positive;
* every campaign is bit-identical across two seeded executions.

Emits ``BENCH_serve.json`` (p50/p99 latency, goodput, shed rate per
scenario) for the perf-regression gate in ``benchmarks/compare.py``.
"""

import numpy as np

from repro.serve import build_scenario

from benchmarks.conftest import write_table
from benchmarks.emit_json import emit_json

SCENARIOS = ("poisson", "bursty", "overload")
GPUS = 8
SEED = 0


def _campaign(name):
    session = build_scenario(name, gpus=GPUS)
    first = session.run(seed=SEED)
    second = session.run(seed=SEED)
    return session, first, first.signature() == second.signature()


def _cell(report, deterministic):
    latencies = np.array([
        rec.latency for rec in report.records
        if rec.outcome == "completed"
    ])
    counts = report.outcome_counts()
    submitted = sum(counts.values()) + report.unaccounted
    return {
        "submitted": submitted,
        "completed": int(counts["completed"]),
        "shed": int(report.shed),
        "shed_rate": round(report.shed_rate, 6),
        "silent_drops": int(report.unaccounted),
        "p50_latency_us": round(float(np.percentile(latencies, 50)) * 1e6, 4),
        "p99_latency_us": round(float(np.percentile(latencies, 99)) * 1e6, 4),
        "goodput_rps": round(sum(
            stats["goodput_rps"] for stats in report.tenants.values()
        ), 3),
        "min_slo_attainment": min(
            stats["slo_attainment"] for stats in report.tenants.values()
        ),
        "final_level": report.final_level,
        "deterministic": bool(deterministic),
    }


def test_serving_latency_goodput_shedding(benchmark):
    cells = {}
    rows = []
    for name in SCENARIOS:
        _, report, deterministic = _campaign(name)

        # Claim 3 first: determinism is a precondition for the gate.
        assert deterministic, f"{name}: reports diverged across reruns"
        assert report.unaccounted == 0, f"{name}: silent drops"

        cell = _cell(report, deterministic)
        cells[name] = cell
        rows.append([
            name, cell["submitted"], cell["completed"], cell["shed"],
            f"{cell['shed_rate']:.3f}", f"{cell['p50_latency_us']:.2f}",
            f"{cell['p99_latency_us']:.2f}", f"{cell['goodput_rps']:.0f}",
            cell["final_level"],
        ])

        if name == "overload":
            # Claim 2: the ladder engaged and the final window is clean.
            assert report.ladder, "overload must climb the ladder"
            assert report.windows[-1]["violating"] == []
            assert report.autoscale
        else:
            # Claim 1: healthy mixes meet the SLO for every tenant.
            assert cell["min_slo_attainment"] == 1.0

    write_table(
        "serve_scenarios",
        f"Online serving campaigns on a {GPUS}-GPU DGX twin, seed {SEED}",
        ["scenario", "submitted", "completed", "shed", "shed rate",
         "p50 (us)", "p99 (us)", "goodput (r/s)", "final level"],
        rows,
        notes=(
            "Shed = typed rejections (rate-limit, queue-full, "
            "tenant-shed) + deadline expiries; silent drops are zero "
            "by construction.  Under the 2x overload burst the ladder "
            "shrinks the coalescing window, serves stale replicas, "
            "then sheds the bronze tenant, and the autoscaler grows "
            "the deployment — the final feedback window has every "
            "tenant's p99 back inside its SLO."
        ),
    )

    emit_json("serve", {
        "gpus": GPUS,
        "seed": SEED,
        "scenarios": list(SCENARIOS),
        "cells": cells,
    })

    benchmark.pedantic(
        lambda: build_scenario("bursty", gpus=GPUS).run(seed=SEED),
        rounds=1, iterations=1,
    )
