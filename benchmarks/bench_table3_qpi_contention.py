"""Table 3: attainable QPI bandwidth under contention.

Paper: 1 GPU attains 9.50 GB/s, 2 GPUs 5.12, 3 GPUs 3.34 — contention
"severely degrades communication speed" (§3).  We push concurrent flows
through the simulated QPI and measure what each attains.
"""

import pytest

from repro.simulator.network import Flow, NetworkSimulator
from repro.topology.links import LinkKind, PhysicalConnection

from benchmarks.conftest import write_table

PAPER = {1: 9.50, 2: 5.12, 3: 3.34}
TRANSFER_BYTES = 16e6


def attainable_bandwidth(num_gpus: int) -> float:
    qpi = PhysicalConnection("bench:qpi", LinkKind.QPI)
    sim = NetworkSimulator()
    flows = [Flow((qpi,), TRANSFER_BYTES) for _ in range(num_gpus)]
    results = sim.run(flows)
    slowest = max(r.finish_time for r in results)
    return TRANSFER_BYTES / slowest / 1e9


def test_table3_qpi_contention(benchmark):
    measured = {n: attainable_bandwidth(n) for n in (1, 2, 3)}
    write_table(
        "table3_qpi_contention",
        "Table 3: attainable bandwidth (GB/s) of a GPU sharing the QPI",
        ["Number of GPUs", "1", "2", "3"],
        [
            ["paper"] + [f"{PAPER[n]:.2f}" for n in (1, 2, 3)],
            ["measured"] + [f"{measured[n]:.2f}" for n in (1, 2, 3)],
        ],
        notes="Concurrent 16 MB flows over one shared QPI connection.",
    )
    # shape: sharply decreasing, roughly 1/n
    assert measured[1] > measured[2] > measured[3]
    for n in (1, 2, 3):
        assert measured[n] == pytest.approx(PAPER[n], rel=0.15)

    benchmark(attainable_bandwidth, 3)
