"""Vectorized planning/execution fast path: the offline pipeline, timed.

The offline pipeline a session pays before training starts is (1) SPST
planning and (2) auto-tune candidate pricing through
``evaluate_scheme``.  This benchmark times that pipeline on the Table-8
workload (all four dataset twins at 16 GPUs) two ways:

* **old** — the scalar planner engine plus event-fidelity pricing (the
  flow-level simulation) for every candidate;
* **new** — the vectorized planner engine plus cost-only pricing
  (stage times straight from the traffic matrix), the mode the tuner's
  halving rungs use.

The two are interchangeable by construction: the engines emit identical
plans (asserted here via staged costs; tree-level equality is pinned in
``tests/test_engine_equivalence.py``) and cost-only pricing is the
rank-correlated screen whose winner is re-priced at event fidelity.

The artifact lands in ``benchmarks/results/BENCH_fastpath.json``.
Set ``FASTPATH_SMOKE=1`` to run the reduced CI-smoke scale (web-google
at 4 GPUs, no speedup floor — shared runners are too noisy to gate on).
"""

from __future__ import annotations

import os
import time

from repro.baselines.strategies import _EVAL_CACHE, evaluate_scheme
from repro.core.spst import SPSTPlanner

from benchmarks.conftest import get_workload, shared_topology, write_table
from benchmarks.emit_json import emit_json

SMOKE = os.environ.get("FASTPATH_SMOKE", "") == "1"

#: The Table-8 planning workload (dataset twins at 16 GPUs).
DATASETS = ["web-google"] if SMOKE else [
    "reddit", "com-orkut", "web-google", "wiki-talk",
]
NUM_GPUS = 4 if SMOKE else 16

#: The plan-based slice of the auto-tuner's space — strategy x comm
#: method override, the cells a halving rung screens: the schemes whose
#: pricing the cost-only fidelity accelerates.
METHODS = [None, "cuda-vm", "pinned-host", "nic-helper"]
CANDIDATES = [
    (scheme, method)
    for scheme in ("dgcl", "dgcl-cache", "peer-to-peer")
    for method in METHODS
]

#: Composite (planning + pricing) speedup recorded in the artifact.
#: The regression gate lives in ``benchmarks/compare.py`` (which diffs
#: the artifact against the committed baseline with a wall-clock
#: tolerance) rather than as a hard-coded floor assert here.
SPEEDUP_FLOOR = 5.0


#: Repetitions per timed measurement; the minimum is reported.  The
#: work is deterministic, so the minimum is the least-noise estimate
#: (allocator/cache warm-up inflates single shots by up to ~20%).
REPS = 1 if SMOKE else 2


def _plan_seconds(dataset: str, engine: str) -> tuple:
    w = get_workload(dataset, "gcn", NUM_GPUS)
    w.relation  # partition + relation building priced separately
    planner = SPSTPlanner(shared_topology(NUM_GPUS), seed=0, engine=engine)
    best, plan = float("inf"), None
    for _ in range(REPS):
        start = time.perf_counter()
        plan = planner.plan(w.relation)
        best = min(best, time.perf_counter() - start)
    return best, plan


def _pricing_seconds(dataset: str, fidelity: str) -> float:
    w = get_workload(dataset, "gcn", NUM_GPUS)
    w.relation
    for plan in (w.spst_plan, w.p2p_plan):
        plan.tuples()  # pre-compile both plans: timers measure pricing
        plan.backward_tuples()
    best = float("inf")
    for _ in range(REPS):
        _EVAL_CACHE.clear()  # a fresh pipeline prices every cell once
        start = time.perf_counter()
        for scheme, method in CANDIDATES:
            evaluate_scheme(w, scheme=scheme, method=method, fidelity=fidelity)
        best = min(best, time.perf_counter() - start)
    return best


def test_fastpath_offline_pipeline():
    per_dataset = {}
    for dataset in DATASETS:
        scalar_s, scalar_plan = _plan_seconds(dataset, "scalar")
        vec_s, vec_plan = _plan_seconds(dataset, "vectorized")
        # interchangeability: identical staged costs (trees are pinned
        # bit-for-bit in tests/test_engine_equivalence.py)
        assert scalar_plan.cost_model().stage_times() \
            == vec_plan.cost_model().stage_times(), dataset
        event_s = _pricing_seconds(dataset, "event")
        cost_s = _pricing_seconds(dataset, "cost")
        per_dataset[dataset] = {
            "plan_scalar_s": scalar_s,
            "plan_vectorized_s": vec_s,
            "planner_speedup": scalar_s / vec_s if vec_s > 0 else float("inf"),
            "pricing_event_s": event_s,
            "pricing_cost_s": cost_s,
            "pricing_speedup": event_s / cost_s if cost_s > 0 else float("inf"),
            "old_s": scalar_s + event_s,
            "new_s": vec_s + cost_s,
        }

    old_total = sum(d["old_s"] for d in per_dataset.values())
    new_total = sum(d["new_s"] for d in per_dataset.values())
    plan_old = sum(d["plan_scalar_s"] for d in per_dataset.values())
    plan_new = sum(d["plan_vectorized_s"] for d in per_dataset.values())
    composite = old_total / new_total

    rows = [
        [
            d,
            f"{v['plan_scalar_s']:.3f}", f"{v['plan_vectorized_s']:.3f}",
            f"{v['planner_speedup']:.2f}x",
            f"{v['pricing_event_s']:.3f}", f"{v['pricing_cost_s']:.3f}",
            f"{v['old_s'] / v['new_s']:.2f}x",
        ]
        for d, v in per_dataset.items()
    ]
    rows.append([
        "TOTAL", f"{plan_old:.3f}", f"{plan_new:.3f}",
        f"{plan_old / plan_new:.2f}x",
        f"{sum(d['pricing_event_s'] for d in per_dataset.values()):.3f}",
        f"{sum(d['pricing_cost_s'] for d in per_dataset.values()):.3f}",
        f"{composite:.2f}x",
    ])
    write_table(
        "fastpath",
        f"Fast path: offline pipeline, {NUM_GPUS} GPUs "
        f"({len(CANDIDATES)} candidates priced per dataset)",
        ["dataset", "plan scalar", "plan vec", "plan x",
         "price event", "price cost", "pipeline x"],
        rows,
        notes=(
            "old = scalar engine + event-fidelity pricing; new = "
            "vectorized engine + cost-only pricing (halving-rung mode). "
            "Engines emit identical plans; cost pricing is the tuner's "
            f"screening fidelity. Times are min of {REPS} run(s)."
        ),
    )

    emit_json("fastpath", {
        "workload": {
            "datasets": DATASETS,
            "num_gpus": NUM_GPUS,
            "candidates": [
                {"scheme": s, "method": m} for s, m in CANDIDATES
            ],
            "smoke": SMOKE,
        },
        "per_dataset": per_dataset,
        "planner_speedup": plan_old / plan_new,
        "composite_speedup": composite,
        "speedup_floor": None if SMOKE else SPEEDUP_FLOOR,
    })

    # Shape check only at full scale: smoke planning is a few
    # milliseconds, where the vectorized engine's fixed numpy setup
    # overhead can exceed the loop savings.  The speedup *floor* is no
    # longer asserted here — benchmarks/compare.py gates the artifact
    # against the committed baseline instead.
    if not SMOKE:
        assert plan_new < plan_old
