"""Elastic handoffs: downtime, placement quality, and the mixed soak.

Not a paper figure — DGCL assumes a static device set — but the
elasticity layer's headline experiment, in three claims:

* a planned grow/shrink handoff has a *bounded, itemised* downtime
  (drain + checkpoint + replan + re-dispatch) and leaves the loss
  trajectory exactly on the single-device reference;
* the contention-aware scheduler strictly beats naive round-robin
  striping for multi-job placements on a DGX-1 (the generalised
  Table-3 QPI effect: affinity packing keeps each job's traffic off
  the shared trunks);
* a mixed chaos soak — randomized fault schedules interleaved with
  randomized elastic actions — passes every oracle across 25 seeds.
"""

import numpy as np

from repro.chaos import SoakConfig, SoakRunner
from repro.elastic import ElasticController, ElasticScheduler, JobSpec
from repro.gnn import SingleDeviceTrainer, build_gcn
from repro.graph.generators import rmat
from repro.topology import dgx1

from benchmarks.conftest import write_table
from benchmarks.emit_json import emit_json

EPOCHS = 6
SCHEDULE = [
    (1, "shrink", (6, 7)),
    (3, "shrink", (4, 5)),
    (4, "grow", (4, 5, 6, 7)),
]
SOAK_SEEDS = 25
PLACEMENT_SCENARIOS = [(4, 4), (4, 2), (2, 2, 2, 2)]


def _workload():
    g = rmat(300, 2200, seed=4)
    rng = np.random.default_rng(3)
    features = rng.standard_normal((g.num_vertices, 16)).astype(np.float32)
    labels = rng.integers(0, 4, g.num_vertices)
    return g, features, labels


def _model():
    return build_gcn(16, 8, 4, seed=7)


def _elastic_run():
    g, features, labels = _workload()
    trainer = ElasticController(g, dgx1(), _model(), features, labels)
    report = trainer.train_with_schedule(EPOCHS, SCHEDULE)
    return trainer, report


def test_elastic_handoffs_and_placement(benchmark):
    trainer, report = _elastic_run()

    # Claim 1: itemised downtime, exact gradient parity.
    g, features, labels = _workload()
    ref = SingleDeviceTrainer(g, _model(), features, labels).train(EPOCHS)
    parity = bool(np.allclose(ref, report.losses, rtol=1e-4))
    assert parity, "elastic transitions must not disturb the trajectory"
    assert len(trainer.transitions) == len(SCHEDULE)

    rows = []
    for t in trainer.transitions:
        assert t.downtime_seconds > 0
        rows.append([
            f"{t.kind} {list(t.delta)}",
            f"{len(t.devices_before)}->{len(t.devices_after)}",
            t.plan_source,
            f"{t.drain_seconds * 1e6:.2f}",
            f"{t.checkpoint_seconds * 1e6:.2f}",
            f"{t.replan_seconds * 1e6:.2f}",
            f"{t.bootstrap_seconds * 1e6:.2f}",
            f"{t.downtime_seconds * 1e6:.2f}",
        ])
    write_table(
        "elastic_handoff_downtime",
        f"Planned grow/shrink handoffs, GCN on rmat-300 twin, "
        f"{EPOCHS} epochs",
        ["transition", "devices", "plan", "drain (us)", "ckpt (us)",
         "replan (us)", "dispatch (us)", "downtime (us)"],
        rows,
        notes=(
            "Each handoff drains in-flight collectives, snapshots the "
            "model, repartitions onto the new set, patches the plan "
            "(memo hit / incremental / full SPST) and re-dispatches "
            "sub-graphs.  The live weights carry over, so per-epoch "
            "losses match the single-device reference exactly."
        ),
    )

    # Claim 2: contention-aware placement strictly beats naive striping.
    scheduler = ElasticScheduler(dgx1())
    placement_rows = []
    placements = []
    strict_wins = 0
    for sizes in PLACEMENT_SCENARIOS:
        jobs = [
            JobSpec(name=f"job-{chr(ord('a') + i)}", devices=n)
            for i, n in enumerate(sizes)
        ]
        aware = scheduler.place(jobs)
        naive = scheduler.naive_place(jobs)
        if aware.interference.total < naive.interference.total:
            strict_wins += 1
        placement_rows.append([
            "+".join(map(str, sizes)),
            f"{aware.interference.total * 1e9:.3f}",
            f"{naive.interference.total * 1e9:.3f}",
            len(aware.interference.per_connection),
            len(naive.interference.per_connection),
        ])
        placements.append({
            "jobs": list(sizes),
            "aware": aware.as_dict(),
            "naive": naive.as_dict(),
        })
    assert strict_wins >= 1, (
        "the contention-aware scheduler must strictly beat naive "
        "placement on at least one two-job scenario"
    )
    two_job = placements[0]
    assert (
        two_job["aware"]["interference"]["total_interference_seconds"]
        < two_job["naive"]["interference"]["total_interference_seconds"]
    )
    write_table(
        "elastic_placement",
        "Contention-aware vs naive multi-job placement on one DGX-1",
        ["jobs", "aware interference (ns)", "naive (ns)",
         "aware shared conns", "naive shared conns"],
        placement_rows,
        notes=(
            "Interference = per-connection extra serialisation beyond "
            "the heaviest single user (the paper's Table-3 QPI effect, "
            "generalised across jobs).  Affinity packing places 4+4 "
            "jobs on the two NVLink cliques and shares nothing; naive "
            "round-robin striping drags every job across the QPI."
        ),
    )

    # Claim 3: the 25-seed mixed chaos soak passes every oracle.
    soak = SoakRunner(SoakConfig(
        elastic_every=1, elastic_epochs=4, train_every=5,
    )).run(SOAK_SEEDS)
    assert soak.passed, soak.summary()

    emit_json("elastic", {
        "epochs": EPOCHS,
        "schedule": [[e, k, list(d)] for e, k, d in SCHEDULE],
        "gradient_parity": parity,
        "transitions": [t.as_dict() for t in trainer.transitions],
        "placement": placements,
        "soak": {
            "seeds": SOAK_SEEDS,
            "passed": sum(1 for r in soak.results if r.passed),
            "config": soak.config,
        },
    })

    benchmark.pedantic(_elastic_run, rounds=1, iterations=1)
