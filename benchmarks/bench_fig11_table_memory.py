"""Figure 11: memory overhead of the send/receive tables.

Paper: the per-GPU tables that drive decentralized coordination cost
less than 0.2 % (2 per-mille) of the peak training memory — they hold
vertex *ids*, not embeddings, and are reused across layers and epochs.
"""

import pytest

from repro.simulator.compute import partition_memory_bytes
from repro.simulator.devices import DeviceMemory

from benchmarks.conftest import get_workload, write_table

DATASETS = ["reddit", "com-orkut", "web-google", "wiki-talk"]
PAPER_8GPU = {  # per-mille, from Figure 11a
    "reddit": 0.935, "com-orkut": 0.096,
    "web-google": 1.880, "wiki-talk": 0.350,
}


def replay_device_memory(
    device: int,
    num_local: int,
    num_remote: int,
    num_edges: int,
    layer_dims,
    boundary_dims,
    bytes_per_float: int = 4,
    activation_copies: int = 4,
    framework_overhead: int = 16_000_000,
) -> DeviceMemory:
    """Replay one epoch's allocation sequence through the allocator.

    The gathered remote buffers are freed at epoch end, so the final
    ``in_use`` drops — the *peak* (what Figure 11 normalises against)
    must not: this exercises ``DeviceMemory``'s high-water tracking.
    """
    mem = DeviceMemory(device, capacity_bytes=1 << 40)
    mem.allocate("framework", framework_overhead)
    mem.allocate("adjacency", 2 * (num_edges + num_local + num_remote + 1) * 8)
    for li, dim in enumerate(layer_dims):
        mem.allocate(
            f"local_act_{li}",
            num_local * dim * bytes_per_float * activation_copies,
        )
    for li, dim in enumerate(boundary_dims):
        mem.allocate(f"remote_{li}", num_remote * dim * 2 * bytes_per_float)
    for li in range(len(boundary_dims)):
        mem.free(f"remote_{li}")
    return mem


def table_ratio(dataset: str, num_gpus: int) -> float:
    w = get_workload(dataset, "gcn", num_gpus)
    tables = w.spst_plan.table_memory_bytes(bytes_per_id=4)
    dims = w.model.memory_dims()
    boundary = w.model.layer_dims[: w.num_layers]
    training = 0
    for d in range(num_gpus):
        num_local, num_rows, num_edges = w.device_slice(d)
        mem = replay_device_memory(
            d, num_local, num_rows - num_local, num_edges, dims, boundary
        )
        expected = partition_memory_bytes(
            num_local, num_rows - num_local, num_edges, dims, boundary
        )
        # The replayed high-water mark is the closed form — and survives
        # the end-of-epoch frees of the gathered remote buffers.
        assert mem.peak_bytes == expected, (d, mem.peak_bytes, expected)
        remote_total = sum((num_rows - num_local) * dim * 2 * 4 for dim in boundary)
        assert mem.peak_bytes - mem.in_use == remote_total
        assert f"remote_{len(boundary) - 1}" in mem.peak_tracking
        training += mem.peak_bytes
    return tables / training


@pytest.mark.parametrize("num_gpus", [8, 16])
def test_fig11_table_memory(num_gpus, benchmark):
    ratios = {d: table_ratio(d, num_gpus) for d in DATASETS}
    rows = [
        [d, f"{1e3 * ratios[d]:.3f}",
         f"{PAPER_8GPU[d]:.3f}" if num_gpus == 8 else "-"]
        for d in DATASETS
    ]
    write_table(
        f"fig11_table_memory_{num_gpus}gpu",
        f"Figure 11: send/recv tables over training memory (per-mille), {num_gpus} GPUs",
        ["Dataset", "measured (per-mille)", "paper 8-GPU (per-mille)"],
        rows,
        notes=(
            "Tables store int32 vertex ids; one table set serves all "
            "layers.  The com-orkut twin cuts a ~10x larger *fraction* "
            "of its edges than METIS cuts on the real 117M-edge Orkut, "
            "which inflates its ratio above the paper's 0.096 per-mille."
        ),
    )
    # Paper's claim: the ratio is tiny (below 0.2 % of training memory).
    for dataset, ratio in ratios.items():
        assert ratio < 0.0025, (dataset, ratio)

    benchmark.pedantic(lambda: table_ratio("web-google", num_gpus),
                       rounds=3, iterations=1)
