"""Tests for model builders, the reference trainer, and distributed
training equivalence — the library's central correctness property."""

import numpy as np
import pytest

from repro.core import CommRelation, SPSTPlanner, peer_to_peer_plan
from repro.gnn import (
    SGD,
    SingleDeviceTrainer,
    build_commnet,
    build_gcn,
    build_gin,
    build_model,
)
from repro.gnn.distributed import DistributedTrainer
from repro.graph.datasets import synthetic_features, synthetic_labels
from repro.graph.generators import rmat
from repro.partition import partition
from repro.topology import dgx1, pcie_only, ring


class TestBuilders:
    def test_layer_dims(self):
        m = build_gcn(32, 16, 5, num_layers=3)
        assert m.layer_dims == [32, 16, 16, 5]
        assert m.num_layers == 3

    def test_memory_dims_gin_includes_hidden(self):
        m = build_gin(32, 16, 5)
        assert m.memory_dims() == [32, 32, 16, 10, 5]

    def test_memory_dims_gcn(self):
        m = build_gcn(32, 16, 5)
        assert m.memory_dims() == [32, 16, 5]

    def test_build_model_by_name(self):
        for name in ("gcn", "commnet", "gin"):
            m = build_model(name, 8, 4, 3)
            assert m.name == name

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("transformer", 8, 4, 3)

    def test_parameter_counts(self):
        gcn = build_gcn(8, 4, 3)
        # layer1: 8*4 + 4; layer2: 4*3 + 3
        assert gcn.parameter_count() == 8 * 4 + 4 + 4 * 3 + 3
        commnet = build_commnet(8, 4, 3)
        assert commnet.parameter_count() == 2 * 8 * 4 + 4 + 2 * 4 * 3 + 3

    def test_state_bytes(self):
        m = build_gcn(8, 4, 3)
        assert m.state_bytes() == m.parameter_count() * 4

    def test_compute_cost_positive_and_additive(self):
        m = build_gcn(32, 16, 5)
        c = m.compute_cost(100, 150, 600)
        assert c.agg_bytes > 0 and c.dense_flops > 0

    def test_empty_model_rejected(self):
        from repro.gnn.models import GNNModel

        with pytest.raises(ValueError):
            GNNModel([])


class TestSingleDeviceTrainer:
    @pytest.fixture()
    def task(self):
        g = rmat(120, 700, seed=6)
        feats = synthetic_features(g, 16, seed=2)
        labels = synthetic_labels(g, 4, seed=2)
        return g, feats, labels

    def test_loss_decreases(self, task):
        g, feats, labels = task
        model = build_gcn(16, 8, 4, seed=0)
        trainer = SingleDeviceTrainer(g, model, feats, labels, lr=0.5)
        losses = trainer.train(12)
        assert losses[-1] < losses[0]

    def test_no_update_keeps_loss(self, task):
        g, feats, labels = task
        model = build_gcn(16, 8, 4, seed=0)
        trainer = SingleDeviceTrainer(g, model, feats, labels)
        l1 = trainer.run_epoch(update=False).loss
        l2 = trainer.run_epoch(update=False).loss
        assert l1 == pytest.approx(l2)

    def test_shape_checks(self, task):
        g, feats, labels = task
        model = build_gcn(16, 8, 4)
        with pytest.raises(ValueError):
            SingleDeviceTrainer(g, model, feats[:-1], labels)
        with pytest.raises(ValueError):
            SingleDeviceTrainer(g, model, feats[:, :8], labels)

    def test_sgd_mismatched_grads(self, task):
        model = build_gcn(16, 8, 4)
        with pytest.raises(ValueError):
            SGD(model).step([])


class TestDistributedEquivalence:
    """The paper's invariant: every communication scheme computes the
    same result as single-GPU training."""

    @pytest.fixture(scope="class")
    def task(self):
        g = rmat(220, 1500, seed=7)
        feats = synthetic_features(g, 24, seed=3)
        labels = synthetic_labels(g, 5, seed=3)
        r = partition(g, 8, seed=0)
        rel = CommRelation(g, r.assignment, 8)
        return g, feats, labels, rel

    @pytest.mark.parametrize("builder", [build_gcn, build_commnet, build_gin])
    def test_matches_reference_over_epochs(self, task, builder):
        g, feats, labels, rel = task
        plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
        ref = SingleDeviceTrainer(g, builder(24, 12, 5, seed=9), feats,
                                  labels, lr=0.1)
        dist = DistributedTrainer(rel, plan, builder(24, 12, 5, seed=9),
                                  feats, labels, lr=0.1)
        for _ in range(3):
            a = ref.run_epoch()
            b = dist.run_epoch()
            assert a.loss == pytest.approx(b.loss, rel=1e-5)
            assert np.allclose(a.logits, b.logits, atol=1e-4)

    @pytest.mark.parametrize("plan_kind", ["p2p", "ring"])
    def test_plan_choice_does_not_change_results(self, task, plan_kind):
        g, feats, labels, rel = task
        if plan_kind == "p2p":
            plan = peer_to_peer_plan(rel, dgx1())
        else:
            plan = SPSTPlanner(ring(8), seed=0).plan(rel)
        ref = SingleDeviceTrainer(g, build_gcn(24, 12, 5, seed=1), feats,
                                  labels, lr=0.1)
        dist = DistributedTrainer(rel, plan, build_gcn(24, 12, 5, seed=1),
                                  feats, labels, lr=0.1)
        a = ref.run_epoch()
        b = dist.run_epoch()
        assert np.allclose(a.logits, b.logits, atol=1e-4)

    def test_three_layer_model(self, task):
        g, feats, labels, rel = task
        plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
        ref = SingleDeviceTrainer(
            g, build_gcn(24, 12, 5, num_layers=3, seed=2), feats, labels
        )
        dist = DistributedTrainer(
            rel, plan, build_gcn(24, 12, 5, num_layers=3, seed=2),
            feats, labels,
        )
        a = ref.run_epoch()
        b = dist.run_epoch()
        assert np.allclose(a.logits, b.logits, atol=1e-4)

    def test_loss_decreases_distributed(self, task):
        g, feats, labels, rel = task
        plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
        dist = DistributedTrainer(rel, plan, build_gcn(24, 12, 5, seed=3),
                                  feats, labels, lr=0.5)
        losses = dist.train(10)
        assert losses[-1] < losses[0]

    def test_feature_shape_checked(self, task):
        g, feats, labels, rel = task
        plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
        with pytest.raises(ValueError):
            DistributedTrainer(rel, plan, build_gcn(24, 12, 5), feats[:-1],
                               labels)


@pytest.mark.slow
class TestSixteenGpuTraining:
    """End-to-end distributed training across two machines (16 GPUs)."""

    def test_matches_reference_over_ib(self):
        from repro.partition import hierarchical_partition
        from repro.topology import dual_dgx1

        g = rmat(400, 2600, seed=21)
        feats = synthetic_features(g, 16, seed=6)
        labels = synthetic_labels(g, 4, seed=6)
        topo = dual_dgx1()
        assignment = hierarchical_partition(g, topo, seed=0).assignment
        rel = CommRelation(g, assignment, 16)
        plan = SPSTPlanner(topo, seed=0).plan(rel)
        plan.validate(rel)

        ref = SingleDeviceTrainer(g, build_gcn(16, 8, 4, seed=11), feats,
                                  labels, lr=0.1)
        dist = DistributedTrainer(rel, plan, build_gcn(16, 8, 4, seed=11),
                                  feats, labels, lr=0.1)
        for _ in range(2):
            a = ref.run_epoch()
            b = dist.run_epoch()
            assert a.loss == pytest.approx(b.loss, rel=1e-5)
            assert np.allclose(a.logits, b.logits, atol=1e-4)

    def test_cross_machine_plan_uses_ib_sparingly(self):
        """The hierarchical partition + SPST keep most traffic off IB."""
        from repro.partition import hierarchical_partition
        from repro.topology import LinkKind, dual_dgx1

        g = rmat(400, 2600, seed=21)
        topo = dual_dgx1()
        assignment = hierarchical_partition(g, topo, seed=0).assignment
        rel = CommRelation(g, assignment, 16)
        plan = SPSTPlanner(topo, seed=0).plan(rel)
        volumes = plan.volume_by_kind()
        ib = volumes.get(LinkKind.IB, 0)
        total = sum(volumes.values())
        assert ib < 0.5 * total


class TestAdam:
    @pytest.fixture()
    def task(self):
        g = rmat(120, 700, seed=6)
        feats = synthetic_features(g, 16, seed=2)
        labels = synthetic_labels(g, 4, seed=2)
        return g, feats, labels

    def test_adam_trains(self, task):
        from repro.gnn import Adam

        g, feats, labels = task
        model = build_gcn(16, 8, 4, seed=0)
        trainer = SingleDeviceTrainer(
            g, model, feats, labels, optimizer=Adam(model, lr=0.02)
        )
        losses = trainer.train(15)
        assert losses[-1] < losses[0]

    def test_adam_distributed_matches_reference(self, task):
        from repro.gnn import Adam

        g, feats, labels = task
        r = partition(g, 4, seed=0)
        rel = CommRelation(g, r.assignment, 4)
        plan = SPSTPlanner(dgx1(4), seed=0).plan(rel)
        m_ref = build_gcn(16, 8, 4, seed=7)
        m_dist = build_gcn(16, 8, 4, seed=7)
        ref = SingleDeviceTrainer(g, m_ref, feats, labels,
                                  optimizer=Adam(m_ref, lr=0.02))
        dist = DistributedTrainer(rel, plan, m_dist, feats, labels,
                                  optimizer=Adam(m_dist, lr=0.02))
        for _ in range(3):
            a = ref.run_epoch()
            b = dist.run_epoch()
            assert a.loss == pytest.approx(b.loss, rel=1e-4)

    def test_adam_state_accounting(self):
        from repro.gnn import Adam

        model = build_gcn(8, 4, 3)
        opt = Adam(model)
        # two float64 moments per float32 parameter
        assert opt.state_bytes() == model.parameter_count() * 8 * 2

    def test_adam_invalid_betas(self):
        from repro.gnn import Adam

        with pytest.raises(ValueError):
            Adam(build_gcn(8, 4, 3), beta1=1.0)

    def test_adam_grad_count_checked(self):
        from repro.gnn import Adam

        with pytest.raises(ValueError):
            Adam(build_gcn(8, 4, 3)).step([])
