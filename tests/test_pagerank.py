"""Tests for PageRank over the DGCL stack (the paper's §9 suggestion)."""

import numpy as np
import pytest

from repro.apps import DistributedPageRank, pagerank
from repro.core import CommRelation, SPSTPlanner, peer_to_peer_plan
from repro.graph.csr import Graph
from repro.graph.generators import rmat, star_graph
from repro.partition import partition
from repro.topology import dgx1, ring


class TestReferencePageRank:
    def test_sums_to_one(self):
        g = rmat(200, 1500, seed=1)
        pr = pagerank(g)
        assert pr.sum() == pytest.approx(1.0, abs=1e-6)
        assert (pr > 0).all()

    def test_uniform_on_symmetric_cycle(self):
        n = 10
        g = Graph(np.arange(n), (np.arange(n) + 1) % n, n)
        pr = pagerank(g)
        assert np.allclose(pr, 1.0 / n, atol=1e-8)

    def test_hub_ranks_highest(self):
        g = star_graph(20, directed_out=False)  # all leaves point at 0
        pr = pagerank(g)
        assert pr[0] == pytest.approx(pr.max())
        assert pr[0] > 5 * pr[1]

    def test_dangling_mass_conserved(self):
        # vertex 2 is dangling
        g = Graph([0, 1], [2, 2], 3)
        pr = pagerank(g)
        assert pr.sum() == pytest.approx(1.0, abs=1e-8)

    def test_empty_graph(self):
        assert pagerank(Graph([], [], 0)).size == 0


class TestDistributedPageRank:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = rmat(300, 2400, seed=3)
        r = partition(graph, 8, seed=0)
        rel = CommRelation(graph, r.assignment, 8)
        plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
        return graph, rel, plan

    def test_matches_reference(self, setup):
        graph, rel, plan = setup
        reference = pagerank(graph, max_iters=60)
        result = DistributedPageRank(rel, plan).run(max_iters=60)
        assert np.allclose(result.ranks, reference, atol=1e-9)

    def test_converges_and_reports(self, setup):
        graph, rel, plan = setup
        result = DistributedPageRank(rel, plan).run(tol=1e-10, max_iters=200)
        assert result.residual < 1e-10
        assert 1 < result.iterations < 200
        assert result.simulated_comm_seconds > 0
        # residuals decrease (power iteration contracts)
        hist = result.residual_history
        assert hist[-1] < hist[0]

    def test_plan_choice_does_not_change_ranks(self, setup):
        graph, rel, plan = setup
        p2p = peer_to_peer_plan(rel, dgx1())
        a = DistributedPageRank(rel, plan).run(max_iters=40)
        b = DistributedPageRank(rel, p2p).run(max_iters=40)
        assert np.allclose(a.ranks, b.ranks, atol=1e-12)

    def test_multi_hop_plan_on_ring(self, setup):
        graph, rel, _ = setup
        ring_plan = SPSTPlanner(ring(8), seed=0).plan(rel)
        reference = pagerank(graph, max_iters=40)
        result = DistributedPageRank(rel, ring_plan).run(max_iters=40)
        assert np.allclose(result.ranks, reference, atol=1e-9)

    def test_invalid_damping(self, setup):
        _, rel, plan = setup
        with pytest.raises(ValueError):
            DistributedPageRank(rel, plan, damping=1.5)

    def test_ranks_sum_to_one(self, setup):
        _, rel, plan = setup
        result = DistributedPageRank(rel, plan).run(max_iters=50)
        assert result.ranks.sum() == pytest.approx(1.0, abs=1e-6)
