"""Scalar vs. vectorized SPST engines: plan-equivalence oracles.

The vectorized engine (``SPSTPlanner(engine="vectorized")``) is a fast
path, not an approximation: it must produce *identical* multicast trees
and *identical* staged costs to the scalar oracle on every input.  These
tests pin that contract three ways — the four benchmark dataset twins,
hypothesis-randomized graphs/partitions/topologies, and the chaos
byte-conservation oracle run against a vectorized plan.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CommRelation, SPSTPlanner
from repro.graph import load_dataset
from repro.graph.csr import Graph
from repro.graph.generators import rmat
from repro.partition import hierarchical_partition, partition
from repro.topology import dgx1, dual_dgx1, fully_connected, pcie_only


def assert_plans_equivalent(a, b):
    """Identical trees (routes, vertices, edges) and staged costs."""
    assert len(a.routes) == len(b.routes)
    for ra, rb in zip(a.routes, b.routes):
        assert ra.source == rb.source
        assert ra.destinations == rb.destinations
        assert np.array_equal(ra.vertices, rb.vertices)
        assert ra.edges == rb.edges
    assert a.cost_model().stage_times() == b.cost_model().stage_times()


def plan_both(relation, topology, seed=0, chunks_per_class=4,
              refine_passes=1):
    scalar = SPSTPlanner(
        topology, chunks_per_class=chunks_per_class, seed=seed,
        refine_passes=refine_passes, engine="scalar",
    ).plan(relation)
    fast = SPSTPlanner(
        topology, chunks_per_class=chunks_per_class, seed=seed,
        refine_passes=refine_passes, engine="vectorized",
    ).plan(relation)
    return scalar, fast


class TestDatasetTwins:
    """All four benchmark graphs plan identically under both engines."""

    @pytest.mark.parametrize("dataset,gpus", [
        ("web-google", 8),
        ("reddit", 4),
        ("wiki-talk", 4),
        ("com-orkut", 4),
    ])
    def test_equivalent_on_benchmark_graph(self, dataset, gpus):
        g = load_dataset(dataset)
        topo = dgx1(gpus)
        assignment = hierarchical_partition(g, topo, seed=0).assignment
        rel = CommRelation(g, assignment, gpus)
        scalar, fast = plan_both(rel, topo)
        assert_plans_equivalent(scalar, fast)
        fast.validate(rel)


class TestEngineKnob:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            SPSTPlanner(dgx1(4), engine="cuda")

    def test_vectorized_is_default(self):
        assert SPSTPlanner(dgx1(4)).engine == "vectorized"


@st.composite
def random_relation(draw):
    """A random (graph, assignment, topology) planning instance."""
    n = draw(st.integers(min_value=8, max_value=60))
    m = draw(st.integers(min_value=n, max_value=6 * n))
    g = rmat(n, m, seed=draw(st.integers(0, 10**6)))
    topo = draw(st.sampled_from([
        dgx1(4), dgx1(8), pcie_only(4), dual_dgx1(), fully_connected(4),
    ]))
    devices = topo.num_devices
    rng = np.random.default_rng(draw(st.integers(0, 10**6)))
    assignment = rng.integers(0, devices, n)
    return CommRelation(g, assignment, devices), topo


class TestRandomizedEquivalence:
    @given(random_relation(), st.integers(0, 5),
           st.sampled_from([1, 2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_engines_agree(self, instance, seed, chunks):
        rel, topo = instance
        scalar, fast = plan_both(rel, topo, seed=seed,
                                 chunks_per_class=chunks)
        assert_plans_equivalent(scalar, fast)

    @given(random_relation(), st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_engines_agree_with_refinement(self, instance, seed):
        rel, topo = instance
        scalar, fast = plan_both(rel, topo, seed=seed, refine_passes=3)
        assert_plans_equivalent(scalar, fast)


class TestChaosByteOracle:
    """The soak's byte-conservation oracle holds for vectorized plans."""

    def _observe(self, relation, plan, blocks):
        from repro.faults.injector import FaultInjector
        from repro.faults.log import FaultLog
        from repro.faults.spec import FaultPlan
        from repro.runtime.protocol import ProtocolRunner

        runner = ProtocolRunner(
            relation, plan,
            injector=FaultInjector(FaultPlan([]), log=FaultLog()),
        )
        return runner.run_data(blocks)

    def test_vectorized_plan_conserves_bytes(self):
        from repro.chaos.oracles import RunObservation, check_bytes
        from repro.obs.metrics import MetricsRegistry
        from repro.runtime.protocol import ProtocolRunner

        g = rmat(200, 1600, seed=7)
        topo = dgx1(8)
        part = partition(g, 8, seed=1)
        rel = CommRelation(g, part.assignment, 8)
        scalar, fast = plan_both(rel, topo, seed=1)
        assert_plans_equivalent(scalar, fast)

        dim = 4
        rng = np.random.default_rng(0)
        feats = rng.standard_normal((g.num_vertices, dim)).astype(np.float32)
        blocks = [feats[rel.local_vertices[d]] for d in range(8)]

        tuples = list(fast.tuples())
        planned = {}
        for t in tuples:
            for conn in t.link.connections:
                planned[conn.name] = planned.get(conn.name, 0.0) \
                    + t.units * dim * 4

        # the dense traffic matrix is the same accounting, stage-major
        matrix = fast.traffic_matrix()
        names = list(fast.topology.connections)
        by_conn = matrix.sum(axis=0) * dim * 4
        for i, name in enumerate(names):
            assert by_conn[i] == pytest.approx(planned.get(name, 0.0))

        metrics = MetricsRegistry()
        gathered, report = ProtocolRunner(
            rel, fast, metrics=metrics,
        ).run_data(blocks)
        obs = RunObservation(
            gathered=gathered,
            total_time=report.total_time,
            transfers=report.transfers,
            device_finish=dict(report.device_finish),
            stage_finish=dict(report.stage_finish),
            log_signature=(),
            trace_signature=(),
            metrics=metrics.snapshot(),
        )
        assert check_bytes(obs, planned, len(tuples), rerouted=False) == []
