"""strategy="auto" and the plan cache through the session and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import DGCLSession
from repro.topology.presets import dgx1
from repro.__main__ import main


class TestSessionAuto:
    """DGCLSession(strategy=..., plan_cache=...)."""

    def test_auto_strategy_plans_and_communicates(self, small_graph):
        session = DGCLSession(dgx1(), strategy="auto")
        report = session.build_comm_info(small_graph)
        assert report.plan_source == "planned"
        assert report.tune_report is session.tune_report
        plan = report.plan
        assert session.tune_report is not None
        assert session.tune_report.candidate.plan_based
        plan.validate(session.relation)
        feats = np.random.default_rng(0).normal(
            size=(small_graph.num_vertices, 4)
        )
        gathered = session.graph_allgather(session.dispatch_features(feats))
        assert len(gathered) == session.topology.num_devices
        assert session.simulated_comm_seconds > 0.0

    def test_p2p_strategy(self, small_graph):
        session = DGCLSession(dgx1(), strategy="p2p")
        plan = session.build_comm_info(small_graph).plan
        assert plan.num_stages == 1  # direct sends only
        plan.validate(session.relation)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            DGCLSession(dgx1(), strategy="best-effort")

    def test_warm_cache_skips_planning(self, small_graph, tmp_path):
        first = DGCLSession(dgx1(), strategy="auto", plan_cache=tmp_path)
        plan_a = first.build_comm_info(small_graph).plan
        assert first.plan_source == "planned"
        assert first.plan_cache.stats.stores == 1

        second = DGCLSession(dgx1(), strategy="auto", plan_cache=tmp_path)
        plan_b = second.build_comm_info(small_graph).plan
        assert second.plan_source == "cache"
        assert second.tune_report is None  # tuning skipped entirely
        assert second.plan_cache.stats.hits == 1
        assert len(plan_b.routes) == len(plan_a.routes)
        for a, b in zip(plan_a.routes, plan_b.routes):
            assert np.array_equal(a.vertices, b.vertices)
            assert a.edges == b.edges

    def test_partition_drift_patches_from_sibling(self, small_graph, tmp_path):
        topo = dgx1()
        base = DGCLSession(topo, strategy="spst", plan_cache=tmp_path)
        base.build_comm_info(small_graph)

        rng = np.random.default_rng(3)
        moved = base.relation.assignment.copy()
        idx = rng.choice(small_graph.num_vertices, size=10, replace=False)
        moved[idx] = (moved[idx] + 1) % topo.num_devices

        drifted = DGCLSession(topo, strategy="spst", plan_cache=tmp_path)
        plan = drifted.build_comm_info(small_graph, assignment=moved).plan
        assert drifted.plan_source in ("patched", "replanned")
        if drifted.plan_source == "patched":
            assert drifted.plan_cache.stats.patches == 1
        plan.validate(drifted.relation)


class TestCLI:
    """python -m repro tune / plan --strategy auto / evaluate --scheme auto."""

    def test_tune_reports_ranking(self, capsys):
        assert main(["tune", "--dataset", "web-google", "--gpus", "2"]) == 0
        out = capsys.readouterr().out
        assert "<- pick" in out and "driver=" in out

    def test_tune_json_schema(self, capsys):
        assert main(["tune", "--dataset", "web-google", "--gpus", "2",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["report"]["picked"]["status"] == "ok"
        assert doc["report"]["space_size"] >= 4

    def test_tune_plan_cache_second_run_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["tune", "--dataset", "web-google", "--gpus", "2",
                "--plan-cache", cache_dir, "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["plan_source"] == "planned"
        assert first["plan_cache"]["stores"] == 1

        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["plan_source"] == "cache"
        assert second["plan_cache"]["hits"] == 1
        assert second["report"] is None  # tuning skipped on the hit

    def test_plan_strategy_auto_with_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        code = main(["plan", "--dataset", "web-google", "--gpus", "2",
                     "--strategy", "auto", "--plan-cache", cache_dir,
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["strategy"] == "auto"
        assert doc["plan_source"] == "planned"
        assert doc["plan_cache"]["stores"] == 1

    def test_evaluate_scheme_auto(self, capsys):
        code = main(["evaluate", "--dataset", "web-google", "--gpus", "2",
                     "--scheme", "auto"])
        assert code == 0
        out = capsys.readouterr().out
        assert "auto-tuner picked:" in out
        assert " ok" in out
