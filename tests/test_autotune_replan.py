"""Incremental replanning: patched plans deliver exactly like scratch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune.replan import incremental_replan, plan_cost
from repro.chaos.oracles import RunObservation, check_delivery
from repro.comm.allgather import CompiledAllgather
from repro.core.relation import CommRelation
from repro.core.serialize import plan_to_jsonable
from repro.core.spst import SPSTPlanner
from repro.topology.links import PhysicalConnection
from repro.topology.presets import dgx1
from repro.topology.topology import Link, Topology


def _assignment(graph, topology, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, topology.num_devices, graph.num_vertices)


def _entry(plan, cost=None):
    """A minimal cache-entry envelope around a plan document."""
    meta = {} if cost is None else {"cost_units": cost}
    return {"plan": plan_to_jsonable(plan), "meta": meta}


def _rescale(topology: Topology, name_factor) -> Topology:
    """The same topology with per-connection bandwidth scaling."""
    remap = {}
    for link in topology.links:
        for conn in link.connections:
            if conn not in remap:
                remap[conn] = PhysicalConnection(
                    conn.name, conn.kind,
                    conn.bandwidth * name_factor(conn.name),
                )
    links = [Link(l.src, l.dst, tuple(remap[c] for c in l.connections))
             for l in topology.links]
    return Topology(
        num_devices=topology.num_devices,
        links=links,
        machine_of=topology.machine_of,
        socket_of=topology.socket_of,
        switch_of=topology.switch_of,
        host_paths={d: (tuple(remap[c] for c in topology.host_write_path(d)),
                        tuple(remap[c] for c in topology.host_read_path(d)))
                    for d in topology.devices()
                    if topology.has_host_staging(d)},
        memory_bytes=topology.memory_bytes,
        name=topology.name,
    )


def _gathered(relation, plan, seed=0):
    """Per-device forward-allgather outputs for random features."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(relation.graph.num_vertices, 5))
    runtime = CompiledAllgather(relation, plan)
    local = [features[relation.local_vertices[d]]
             for d in range(relation.num_devices)]
    return runtime.forward(local)


def _delivery_equivalent(relation, patched, scratch) -> None:
    """Assert both plans deliver byte-identical embeddings everywhere."""
    expected = _gathered(relation, scratch)
    got = _gathered(relation, patched)
    obs = RunObservation(
        gathered=got, total_time=0.0, transfers=0, device_finish={},
        stage_finish={}, log_signature=(), trace_signature=(), metrics={},
    )
    assert check_delivery(obs, expected) == []


@pytest.fixture()
def base(small_graph):
    """(topology, assignment, relation, plan) baseline for drift tests."""
    topology = dgx1()
    assignment = _assignment(small_graph, topology)
    relation = CommRelation(small_graph, assignment, topology.num_devices)
    plan = SPSTPlanner(topology, seed=0).plan(relation)
    return topology, assignment, relation, plan


def test_identical_inputs_patch_reuses_everything(base):
    topology, _, relation, plan = base
    result = incremental_replan(_entry(plan), relation, topology)
    assert result.patched
    assert result.regrown_routes == 0 and result.dropped_routes == 0
    assert result.reused_routes == len(plan.routes)
    result.plan.validate(relation)
    _delivery_equivalent(relation, result.plan, plan)


def test_topology_drift_patches_and_delivers(small_graph, base):
    topology, assignment, relation, plan = base
    drifted = _rescale(topology, lambda n: 1.3 if "nv" in n else 1.0)
    result = incremental_replan(_entry(plan), relation, drifted)
    assert result.source in ("patched", "replanned")
    result.plan.validate(relation)
    scratch = SPSTPlanner(drifted, seed=0).plan(relation)
    _delivery_equivalent(relation, result.plan, scratch)


def test_partition_drift_patches_and_delivers(small_graph, base):
    topology, assignment, _, plan = base
    moved = assignment.copy()
    moved[:20] = (moved[:20] + 1) % topology.num_devices
    relation = CommRelation(small_graph, moved, topology.num_devices)
    result = incremental_replan(_entry(plan), relation, topology)
    result.plan.validate(relation)
    scratch = SPSTPlanner(topology, seed=0).plan(relation)
    _delivery_equivalent(relation, result.plan, scratch)
    # Every class the old partition also had reuses its cached tree.
    assert result.reused_routes > 0


def test_vanished_link_routes_regrow(small_graph, base):
    topology, _, relation, plan = base
    # Remove one NVLink entirely: routes that crossed it must regrow.
    victim = topology.links[0]
    pruned = Topology(
        num_devices=topology.num_devices,
        links=[l for l in topology.links if l is not victim],
        machine_of=topology.machine_of,
        socket_of=topology.socket_of,
        switch_of=topology.switch_of,
        host_paths={d: (topology.host_write_path(d),
                        topology.host_read_path(d))
                    for d in topology.devices()
                    if topology.has_host_staging(d)},
        memory_bytes=topology.memory_bytes,
        name=topology.name,
    )
    result = incremental_replan(_entry(plan), relation, pruned)
    result.plan.validate(relation)
    assert result.regrown_routes > 0
    for route in result.plan.routes:
        assert all(link is not victim for link, _ in route.edges)


def test_threshold_regression_falls_back_to_full_replan(base):
    topology, _, relation, plan = base
    # Claim the donor plan was absurdly cheap: any patch "regresses"
    # past the threshold and the replanner must start from scratch.
    entry = _entry(plan, cost=plan_cost(plan) / 1e6)
    result = incremental_replan(entry, relation, topology, threshold=1.5)
    assert result.source == "replanned"
    result.plan.validate(relation)


def test_patched_cost_is_reported(base):
    topology, _, relation, plan = base
    baseline = plan_cost(plan)
    result = incremental_replan(_entry(plan, cost=baseline), relation,
                                topology)
    assert result.patched
    assert result.patched_cost == pytest.approx(baseline)
    assert result.baseline_cost == pytest.approx(baseline)
