"""PlanCache: roundtrip, counters, and loud rejection of bad entries."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.autotune import PlanCache, PlanCacheError, cache_key
from repro.autotune.cache import CACHE_FORMAT_VERSION
from repro.core.relation import CommRelation
from repro.core.spst import SPSTPlanner
from repro.topology.presets import dgx1


@pytest.fixture()
def planned(small_graph):
    """(graph, assignment, topology, plan, key) for one small workload."""
    topology = dgx1()
    rng = np.random.default_rng(7)
    assignment = rng.integers(0, topology.num_devices,
                              small_graph.num_vertices)
    relation = CommRelation(small_graph, assignment, topology.num_devices)
    plan = SPSTPlanner(topology, seed=0).plan(relation)
    key = cache_key(small_graph, assignment, topology,
                    {"strategy": "spst", "chunks_per_class": 4, "seed": 0})
    return small_graph, assignment, topology, plan, key


def test_roundtrip_hit(tmp_path, planned):
    _, _, topology, plan, key = planned
    cache = PlanCache(tmp_path)
    cache.put(key, plan, meta={"strategy": "spst"})
    loaded = cache.get(key, topology)
    assert loaded is not None
    assert len(loaded.routes) == len(plan.routes)
    for a, b in zip(loaded.routes, plan.routes):
        assert a.source == b.source and a.destinations == b.destinations
        assert np.array_equal(a.vertices, b.vertices)
        assert a.edges == b.edges  # links resolve to identical objects
    assert cache.stats.as_dict() == {
        "hits": 1, "misses": 0, "invalidations": 0, "stores": 1, "patches": 0,
        "annotations": 0,
    }


def test_clean_miss_counts(tmp_path, planned):
    _, _, topology, _, key = planned
    cache = PlanCache(tmp_path)
    assert cache.get(key, topology) is None
    assert cache.stats.misses == 1 and cache.stats.hits == 0


def test_corrupt_entry_raises_never_used(tmp_path, planned):
    _, _, topology, plan, key = planned
    cache = PlanCache(tmp_path)
    path = cache.put(key, plan)
    path.write_text("{ not json at all")
    with pytest.raises(PlanCacheError):
        cache.get(key, topology)
    assert cache.stats.invalidations == 1


def test_old_version_rejected(tmp_path, planned):
    _, _, topology, plan, key = planned
    cache = PlanCache(tmp_path)
    path = cache.put(key, plan)
    doc = json.loads(path.read_text())
    doc["format"] = CACHE_FORMAT_VERSION - 1
    path.write_text(json.dumps(doc))
    with pytest.raises(PlanCacheError, match="format"):
        cache.get(key, topology)
    assert cache.stats.invalidations == 1


def test_foreign_file_rejected(tmp_path, planned):
    _, _, topology, plan, key = planned
    cache = PlanCache(tmp_path)
    path = cache.put(key, plan)
    path.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(PlanCacheError, match="not a plan-cache entry"):
        cache.get(key, topology)


def test_recorded_key_mismatch_rejected(tmp_path, planned):
    _, _, topology, plan, key = planned
    cache = PlanCache(tmp_path)
    path = cache.put(key, plan)
    doc = json.loads(path.read_text())
    doc["key"]["partition"] = "0" * 32  # entry claims different inputs
    path.write_text(json.dumps(doc))
    with pytest.raises(PlanCacheError, match="different planning input"):
        cache.get(key, topology)
    assert cache.stats.invalidations == 1


def test_missing_section_rejected(tmp_path, planned):
    _, _, topology, plan, key = planned
    cache = PlanCache(tmp_path)
    path = cache.put(key, plan)
    doc = json.loads(path.read_text())
    del doc["plan"]
    path.write_text(json.dumps(doc))
    with pytest.raises(PlanCacheError, match="missing"):
        cache.get(key, topology)


def test_find_sibling_prefers_topology_only_drift(tmp_path, planned):
    graph, assignment, topology, plan, key = planned
    cache = PlanCache(tmp_path)
    config = {"strategy": "spst", "chunks_per_class": 4, "seed": 0}

    moved = assignment.copy()
    moved[:5] = (moved[:5] + 1) % topology.num_devices
    partition_drift = cache_key(graph, moved, topology, config)
    cache.put(partition_drift, plan)

    # A probe key differing only in partition should adopt that entry.
    probe = cache_key(graph, assignment, topology, config)
    donor = cache.find_sibling(probe)
    assert donor is not None
    assert donor["key"]["partition"] != probe.partition
    assert donor["key"]["topology"] == probe.topology

    # A different graph shares nothing: no donor.
    other_key = cache_key(graph, moved, topology, {"strategy": "p2p"})
    assert cache.find_sibling(other_key) is None


def test_atomic_writes_leave_no_partial_files(tmp_path, planned):
    _, _, topology, plan, key = planned
    cache = PlanCache(tmp_path)
    cache.put(key, plan)
    cache.put(key, plan)  # overwrite in place
    assert len(list(tmp_path.glob("*.tmp"))) == 0
    assert len(cache) == 1
