"""Tests for the numpy GNN primitives, with numerical gradient checks."""

import numpy as np
import pytest

from repro.gnn.functional import (
    aggregate_mean,
    aggregate_sum,
    relu,
    relu_grad,
    scatter_back,
    segment_sum,
    softmax_cross_entropy,
)
from repro.gnn.layers import CommNetLayer, GCNLayer, GINLayer, GraphContext
from repro.graph.csr import Graph
from repro.graph.generators import rmat


def naive_segment_sum(values, indptr):
    out = np.zeros((indptr.size - 1,) + values.shape[1:], values.dtype)
    for i in range(indptr.size - 1):
        out[i] = values[indptr[i]: indptr[i + 1]].sum(axis=0)
    return out


class TestSegmentSum:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal((20, 3)).astype(np.float32)
        indptr = np.array([0, 3, 3, 7, 7, 7, 20])
        assert np.allclose(segment_sum(values, indptr),
                           naive_segment_sum(values, indptr))

    def test_all_empty_segments(self):
        values = np.zeros((0, 4), dtype=np.float32)
        indptr = np.zeros(6, dtype=np.int64)
        out = segment_sum(values, indptr)
        assert out.shape == (5, 4)
        assert (out == 0).all()

    def test_leading_and_trailing_empties(self):
        values = np.ones((4, 2), dtype=np.float32)
        indptr = np.array([0, 0, 2, 4, 4])
        out = segment_sum(values, indptr)
        assert out[0].tolist() == [0, 0]
        assert out[1].tolist() == [2, 2]
        assert out[3].tolist() == [0, 0]

    def test_random_graph_aggregation(self):
        g = rmat(100, 600, seed=1)
        rng = np.random.default_rng(1)
        h = rng.standard_normal((100, 5)).astype(np.float32)
        agg = aggregate_sum(h, g.in_indptr, g.in_indices)
        for v in range(0, 100, 17):
            expected = h[g.in_neighbors(v)].sum(axis=0) if g.in_degree()[v] else 0
            assert np.allclose(agg[v], expected, atol=1e-5)


class TestAggregates:
    def test_mean_divides_by_degree(self):
        g = Graph([0, 1], [2, 2], 3)
        h = np.array([[2.0], [4.0], [0.0]], dtype=np.float32)
        mean = aggregate_mean(h, g.in_indptr, g.in_indices)
        assert mean[2, 0] == pytest.approx(3.0)

    def test_mean_isolated_vertex_zero(self):
        g = Graph([0], [1], 3)
        h = np.ones((3, 2), dtype=np.float32)
        mean = aggregate_mean(h, g.in_indptr, g.in_indices)
        assert (mean[2] == 0).all()

    def test_scatter_back_transposes_aggregate(self):
        """<scatter(g), h> == <g, aggregate(h)> (adjointness)."""
        g = rmat(60, 300, seed=2)
        rng = np.random.default_rng(3)
        h = rng.standard_normal((60, 4)).astype(np.float64)
        grad = rng.standard_normal((60, 4)).astype(np.float64)
        agg = aggregate_sum(h, g.in_indptr, g.in_indices)
        back = scatter_back(grad, g.out_indptr, g.out_indices, 60)
        assert np.allclose((agg * grad).sum(), (h * back).sum(), rtol=1e-9)


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert relu(x).tolist() == [0.0, 0.0, 2.0]

    def test_relu_grad_masks(self):
        x = np.array([-1.0, 0.5])
        g = np.array([10.0, 10.0])
        assert relu_grad(x, g).tolist() == [0.0, 10.0]


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_loss(self):
        logits = np.zeros((4, 5), dtype=np.float32)
        labels = np.array([0, 1, 2, 3])
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(5), rel=1e-5)

    def test_gradient_numerically(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((3, 4)).astype(np.float64)
        labels = np.array([1, 3, 0])
        _, grad = softmax_cross_entropy(logits.copy(), labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                up = logits.copy(); up[i, j] += eps
                dn = logits.copy(); dn[i, j] -= eps
                lu, _ = softmax_cross_entropy(up, labels)
                ld, _ = softmax_cross_entropy(dn, labels)
                assert grad[i, j] == pytest.approx((lu - ld) / (2 * eps), abs=1e-5)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(3), np.zeros(3, dtype=int))


def numerical_layer_grad_check(layer_cls, seed=0, **kwargs):
    """Finite-difference check of a layer's input and weight gradients."""
    g = rmat(25, 120, seed=seed)
    ctx = GraphContext.from_graph(g)
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((25, 6)).astype(np.float64)
    layer = layer_cls(6, 4, seed=seed, **kwargs)
    for name in layer.params:
        layer.params[name] = layer.params[name].astype(np.float64)

    def loss_of(h_val):
        out, _ = layer.forward(ctx, h_val)
        return float((out ** 2).sum()) / 2

    out, cache = layer.forward(ctx, h)
    d_h, grads = layer.backward(ctx, cache, out.copy())

    eps = 1e-6
    rng2 = np.random.default_rng(seed + 1)
    # input gradient at random positions
    for _ in range(8):
        i = int(rng2.integers(25)); j = int(rng2.integers(6))
        up = h.copy(); up[i, j] += eps
        dn = h.copy(); dn[i, j] -= eps
        num = (loss_of(up) - loss_of(dn)) / (2 * eps)
        assert d_h[i, j] == pytest.approx(num, rel=1e-4, abs=1e-6)
    # weight gradients at random positions
    for name, grad in grads.items():
        flat = layer.params[name].reshape(-1)
        gflat = np.asarray(grad).reshape(-1)
        for _ in range(4):
            k = int(rng2.integers(flat.size))
            orig = flat[k]
            flat[k] = orig + eps
            lu = loss_of(h)
            flat[k] = orig - eps
            ld = loss_of(h)
            flat[k] = orig
            assert gflat[k] == pytest.approx((lu - ld) / (2 * eps),
                                             rel=1e-4, abs=1e-6)


class TestLayerGradients:
    def test_gcn_gradients(self):
        numerical_layer_grad_check(GCNLayer)

    def test_commnet_gradients(self):
        numerical_layer_grad_check(CommNetLayer)

    def test_gin_gradients(self):
        numerical_layer_grad_check(GINLayer)

    def test_gcn_no_activation_gradients(self):
        numerical_layer_grad_check(GCNLayer, activation=False)
