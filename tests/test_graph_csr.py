"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.graph.csr import Graph


class TestConstruction:
    def test_basic_counts(self):
        g = Graph([0, 1, 2], [1, 2, 0], 3)
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.avg_degree == pytest.approx(1.0)

    def test_num_vertices_inferred(self):
        g = Graph([0, 5], [3, 2])
        assert g.num_vertices == 6

    def test_dedup_removes_duplicate_edges(self):
        g = Graph([0, 0, 0], [1, 1, 2], 3)
        assert g.num_edges == 2

    def test_dedup_disabled_keeps_duplicates(self):
        g = Graph([0, 0], [1, 1], 3, dedup=False)
        assert g.num_edges == 2

    def test_drop_self_loops(self):
        g = Graph([0, 1], [0, 2], 3, drop_self_loops=True)
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_empty_graph(self):
        g = Graph([], [], 4)
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert g.avg_degree == 0.0

    def test_zero_vertices(self):
        g = Graph([], [], 0)
        assert g.num_vertices == 0

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError, match="same length"):
            Graph([0, 1], [1], 3)

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            Graph([-1], [0], 2)

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(ValueError, match="exceeds"):
            Graph([0], [5], 3)


class TestNeighborhoods:
    def test_out_neighbors(self):
        g = Graph([0, 0, 1], [1, 2, 2], 3)
        assert sorted(g.out_neighbors(0).tolist()) == [1, 2]
        assert g.out_neighbors(2).tolist() == []

    def test_in_neighbors(self):
        g = Graph([0, 0, 1], [1, 2, 2], 3)
        assert sorted(g.in_neighbors(2).tolist()) == [0, 1]
        assert g.in_neighbors(0).tolist() == []

    def test_degrees_sum_to_edges(self, small_graph):
        assert small_graph.out_degree().sum() == small_graph.num_edges
        assert small_graph.in_degree().sum() == small_graph.num_edges

    def test_csr_consistency(self, small_graph):
        src, dst = small_graph.edges
        # Every edge must be findable through both CSR directions.
        for u, v in list(zip(src.tolist(), dst.tolist()))[:50]:
            assert v in small_graph.out_neighbors(u)
            assert u in small_graph.in_neighbors(v)

    def test_has_edge(self):
        g = Graph([0], [1], 3)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)


class TestDerivedGraphs:
    def test_undirected_symmetrises(self):
        g = Graph([0], [1], 2).undirected()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_reverse(self):
        g = Graph([0, 1], [1, 2], 3).reverse()
        assert g.has_edge(1, 0)
        assert g.has_edge(2, 1)
        assert not g.has_edge(0, 1)

    def test_subgraph_relabels(self):
        g = Graph([0, 1, 2, 3], [1, 2, 3, 0], 4)
        sub, ids = g.subgraph(np.array([1, 2]))
        assert sub.num_vertices == 2
        assert sub.num_edges == 1  # only 1 -> 2 survives
        assert sub.has_edge(0, 1)
        assert ids.tolist() == [1, 2]

    def test_subgraph_empty_selection(self, small_graph):
        sub, ids = small_graph.subgraph(np.array([], dtype=np.int64))
        assert sub.num_vertices == 0
        assert sub.num_edges == 0


class TestKHop:
    def test_zero_hops_is_identity(self, tiny_graph):
        out = tiny_graph.k_hop_in_neighborhood(np.array([2]), 0)
        assert out.tolist() == [2]

    def test_one_hop_adds_in_neighbors(self, tiny_graph):
        out = tiny_graph.k_hop_in_neighborhood(np.array([2]), 1)
        assert out.tolist() == [0, 1, 2]

    def test_two_hops(self, tiny_graph):
        out = tiny_graph.k_hop_in_neighborhood(np.array([4]), 2)
        # 4's in-nbrs {1, 3}; their in-nbrs {0, 2}
        assert out.tolist() == [0, 1, 2, 3, 4]

    def test_hops_monotone(self, small_graph):
        seeds = np.array([0, 1])
        sizes = [
            small_graph.k_hop_in_neighborhood(seeds, h).size for h in range(4)
        ]
        assert sizes == sorted(sizes)

    def test_negative_hops_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.k_hop_in_neighborhood(np.array([0]), -1)


class TestEquality:
    def test_equal_graphs(self):
        a = Graph([0, 1], [1, 2], 3)
        b = Graph([1, 0], [2, 1], 3)
        assert a == b

    def test_unequal_graphs(self):
        assert Graph([0], [1], 3) != Graph([0], [2], 3)
