"""Tests for the Listing-1 style user API."""

import numpy as np
import pytest

import repro.api as dgcl
from repro.api import DGCLSession
from repro.graph.datasets import synthetic_features
from repro.graph.generators import rmat
from repro.topology import dgx1


@pytest.fixture(autouse=True)
def fresh_session():
    dgcl.shutdown()
    yield
    dgcl.shutdown()


@pytest.fixture()
def graph():
    return rmat(150, 900, seed=8)


class TestModuleApi:
    def test_listing1_workflow(self, graph):
        """The paper's Listing 1, end to end."""
        dgcl.init(dgx1())
        report = dgcl.build_comm_info(graph)
        assert report.num_stages >= 1
        assert report.plan is dgcl.communication_plan()
        assert report.total_cost == pytest.approx(sum(report.stage_costs))
        features = synthetic_features(graph, 12, seed=0)
        local = dgcl.dispatch_features(features)
        assert len(local) == 8
        gathered = dgcl.graph_allgather(local)
        graphs = dgcl.local_graphs()
        for d, (block, lg) in enumerate(zip(gathered, graphs)):
            assert block.shape == (lg.num_local + lg.num_remote, 12)
            assert np.array_equal(block, features[lg.global_ids])

    def test_scatter_gradients_roundtrip(self, graph):
        dgcl.init(dgx1())
        dgcl.build_comm_info(graph)
        features = synthetic_features(graph, 4, seed=1)
        full = dgcl.graph_allgather(dgcl.dispatch_features(features))
        grads = dgcl.scatter_gradients([np.ones_like(f) for f in full])
        session = dgcl.init.__globals__["_SESSION"]
        # each vertex receives 1 (its own) + #consuming devices
        rel = session.relation
        for d, g in enumerate(grads):
            for i, v in enumerate(rel.local_vertices[d][:20]):
                consumers = {
                    int(rel.assignment[w])
                    for w in graph.out_neighbors(int(v))
                    if rel.assignment[w] != d
                }
                assert g[i, 0] == pytest.approx(1 + len(consumers))

    def test_requires_init(self, graph):
        with pytest.raises(RuntimeError, match="init"):
            dgcl.build_comm_info(graph)

    def test_requires_build(self, graph):
        dgcl.init(dgx1())
        with pytest.raises(RuntimeError, match="build_comm_info"):
            dgcl.dispatch_features(np.zeros((graph.num_vertices, 3)))
        with pytest.raises(RuntimeError):
            dgcl.graph_allgather([])
        with pytest.raises(RuntimeError):
            dgcl.local_graphs()
        with pytest.raises(RuntimeError):
            dgcl.communication_plan()

    def test_simulated_clock_advances(self, graph):
        dgcl.init(dgx1())
        dgcl.build_comm_info(graph)
        session = dgcl.init.__globals__["_SESSION"]
        features = synthetic_features(graph, 8, seed=2)
        assert session.simulated_comm_seconds == 0.0
        dgcl.graph_allgather(dgcl.dispatch_features(features))
        assert session.simulated_comm_seconds > 0.0


class TestSessionObject:
    def test_explicit_session(self, graph):
        session = DGCLSession(dgx1(4))
        session.build_comm_info(graph, seed=1)
        features = synthetic_features(graph, 6, seed=3)
        local = session.dispatch_features(features)
        full = session.graph_allgather(local)
        assert len(full) == 4

    def test_custom_assignment(self, graph):
        session = DGCLSession(dgx1(4))
        assignment = np.arange(graph.num_vertices) % 4
        session.build_comm_info(graph, assignment=assignment)
        assert np.array_equal(session.relation.assignment, assignment)

    def test_feature_length_checked(self, graph):
        session = DGCLSession(dgx1(4))
        session.build_comm_info(graph)
        with pytest.raises(ValueError):
            session.dispatch_features(np.zeros((3, 3)))
