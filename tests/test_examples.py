"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them honest.
They run in-process (import + main()) to share the partition cache.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "compare_strategies.py",
    "custom_topology.py",
    "scaling_study.py",
    "protocol_trace.py",
    "pagerank.py",
    "trace_epoch.py",
]


def run_example(name: str, argv=None) -> None:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv


class TestExamplesExist:
    def test_all_examples_present(self):
        found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert set(EXAMPLES) <= found

    def test_every_example_has_docstring_and_main(self):
        for name in EXAMPLES:
            source = (EXAMPLES_DIR / name).read_text()
            assert source.lstrip().startswith('"""'), name
            assert "def main(" in source, name
            assert '__name__ == "__main__"' in source, name


@pytest.mark.slow
class TestExamplesRun:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "distributed == single-GPU: True" in out

    def test_compare_strategies(self, capsys):
        run_example("compare_strategies.py")
        assert "fastest:" in capsys.readouterr().out

    def test_custom_topology(self, capsys):
        run_example("custom_topology.py")
        assert "simulated allgather" in capsys.readouterr().out

    def test_protocol_trace(self, capsys):
        run_example("protocol_trace.py")
        out = capsys.readouterr().out
        assert "every device holds exactly its local + remote rows" in out

    def test_pagerank(self, capsys):
        run_example("pagerank.py")
        assert "matches single-machine reference: True" in capsys.readouterr().out

    def test_trace_epoch(self, tmp_path, capsys):
        import json

        out = tmp_path / "epoch.trace.json"
        run_example("trace_epoch.py", argv=[str(out)])
        assert "trainer phases:" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
