"""Tests for the telemetry layer (``repro.obs``).

The two load-bearing guarantees:

* **determinism** — same seed, byte-identical Chrome trace;
* **zero perturbation** — arming a tracer changes no simulated timing
  and no training numeric; leaving it unarmed runs the original code.
"""

import json

import numpy as np
import pytest

from repro.core import CommRelation, SPSTPlanner
from repro.faults.log import FaultLog
from repro.gnn import SingleDeviceTrainer, build_model
from repro.gnn.distributed import DistributedTrainer
from repro.graph.datasets import synthetic_features, synthetic_labels
from repro.graph.generators import rmat
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace_json,
    console,
    stats_table,
    to_chrome_trace,
    to_jsonl_events,
)
from repro.partition import partition
from repro.runtime.protocol import ProtocolRunner
from repro.simulator.executor import PlanExecutor
from repro.simulator.timeline import render_gantt, timeline_events
from repro.topology import dgx1
from repro.__main__ import main


@pytest.fixture(scope="module")
def planned():
    graph = rmat(250, 1800, seed=4)
    r = partition(graph, 8, seed=0)
    rel = CommRelation(graph, r.assignment, 8)
    plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
    return graph, rel, plan


def traced_execution(plan, bytes_per_unit=1024):
    tracer, metrics = Tracer(), MetricsRegistry()
    executor = PlanExecutor(plan.topology, tracer=tracer, metrics=metrics)
    report = executor.execute(plan, bytes_per_unit)
    return tracer, metrics, report


class TestTracer:
    def test_events_sorted_and_tracked(self, planned):
        _, _, plan = planned
        tracer, _, report = traced_execution(plan)
        events = tracer.events()
        assert events, "an executed plan must produce spans"
        starts = [e.start for e in events]
        assert starts == sorted(starts)
        tracks = tracer.tracks()
        assert any(t.startswith("device:") for t in tracks)
        assert any(t.startswith("conn:") for t in tracks)
        assert tracer.duration() == pytest.approx(report.total_time)

    def test_phase_clock_offsets_spans(self, planned):
        _, _, plan = planned
        tracer = Tracer()
        executor = PlanExecutor(plan.topology, tracer=tracer, metrics=None)
        first = executor.execute(plan, 1024)
        tracer.advance(first.total_time)
        executor.execute(plan, 1024)
        comm = tracer.by_cat("comm")
        assert any(s.start >= first.total_time for s in comm)

    def test_begin_end_handles(self):
        tracer = Tracer()
        h = tracer.begin("wait", "flag", "device:0", 1.0, stage=2)
        span = tracer.end(h, 3.0, verdict="ok")
        assert span.duration == pytest.approx(2.0)
        assert span.args_dict() == {"stage": 2, "verdict": "ok"}

    def test_span_context_manager(self):
        tracer = Tracer()
        clock = {"t": 0.0}
        with tracer.span("phase", "phase", "trainer", lambda: clock["t"]):
            clock["t"] = 5.0
        (span,) = tracer.events()
        assert (span.start, span.finish) == (0.0, 5.0)


class TestMetrics:
    def test_snapshot_round_trips_through_json(self, planned):
        _, _, plan = planned
        _, metrics, _ = traced_execution(plan)
        snap = metrics.snapshot()
        assert snap
        assert json.loads(json.dumps(snap)) == snap
        assert any(k.startswith("comm.bytes{conn=") for k in snap)
        assert any(k.startswith("comm.bytes{kind=") for k in snap)

    def test_bytes_match_the_report(self, planned):
        _, _, plan = planned
        _, metrics, report = traced_execution(plan)
        snap = metrics.snapshot()
        kind_total = sum(
            v for k, v in snap.items() if k.startswith("comm.bytes{kind=")
        )
        # Per-kind bytes count every wire a flow crosses, so the sum is
        # at least the payload total (paths have >= 1 connection).
        assert kind_total >= report.bytes_moved()
        assert snap["comm.flows"] == report.num_flows

    def test_counter_rejects_negative(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.counter("x").inc(-1)

    def test_stats_table_mentions_every_key(self, planned):
        _, _, plan = planned
        _, metrics, _ = traced_execution(plan)
        table = stats_table(metrics)
        for key in metrics.snapshot():
            assert key in table

    def test_histogram_percentiles_in_snapshot_and_table(self):
        m = MetricsRegistry()
        h = m.histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        snap = m.snapshot()["lat"]
        assert snap["p50"] == pytest.approx(50.5)
        assert snap["p90"] == pytest.approx(90.1)
        assert snap["p99"] == pytest.approx(99.01)
        table = stats_table(m)
        assert "p50=" in table and "p90=" in table and "p99=" in table


class TestChromeExport:
    def test_schema_and_tracks(self, planned):
        _, _, plan = planned
        tracer, metrics, _ = traced_execution(plan)
        doc = to_chrome_trace(tracer, metrics)
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "M", "i"}
        pids = {e["pid"] for e in events}
        assert 1 in pids and 2 in pids  # devices and connections
        for e in events:
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
        names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert {"devices", "connections"} <= names
        assert "metrics" in doc["otherData"]

    def test_two_runs_byte_identical(self):
        def one_run() -> str:
            graph = rmat(200, 1500, seed=7)
            r = partition(graph, 8, seed=1)
            rel = CommRelation(graph, r.assignment, 8)
            plan = SPSTPlanner(dgx1(), seed=1).plan(rel)
            tracer, metrics, _ = traced_execution(plan)
            return chrome_trace_json(tracer, metrics)

        assert one_run() == one_run()

    def test_json_is_parseable(self, planned):
        _, _, plan = planned
        tracer, metrics, _ = traced_execution(plan)
        json.loads(chrome_trace_json(tracer, metrics))


class TestJsonlExport:
    def test_merges_fault_log_in_time_order(self):
        tracer = Tracer()
        tracer.add_span("a", "phase", "trainer", 0.0, 2.0)
        tracer.add_span("b", "phase", "trainer", 3.0, 4.0)
        log = FaultLog()
        log.append(2.5, "link", "detect", "wire-0", "stalled")
        events = to_jsonl_events(tracer, fault_log=log)
        assert [e["type"] for e in events] == ["span", "fault", "span"]
        times = [e["time"] for e in events]
        assert times == sorted(times)
        fault = events[1]
        assert fault["action"] == "detect" and fault["subject"] == "wire-0"

    def test_fault_record_as_dict(self):
        log = FaultLog()
        record = log.append(1.0, "device", "inject", "device 3", "crash")
        assert record.as_dict() == {
            "time": 1.0, "category": "device", "action": "inject",
            "subject": "device 3", "detail": "crash",
        }
        assert log.as_events() == [record.as_dict()]

    def test_elastic_interventions_exported(self):
        """Scale-out/scale-in marks reach the JSONL log, typed elastic."""
        tracer = Tracer()
        tracer.add_span("epoch", "phase", "trainer", 0.0, 4.0)
        log = FaultLog()
        log.append(1.0, "elastic", "scale-out", "devices 6,7", "grow")
        log.append(2.0, "link", "detect", "wire-0", "stalled")
        log.append(3.0, "elastic", "scale-in", "devices 6,7", "shrink")
        events = to_jsonl_events(tracer, fault_log=log)
        kinds = [(e["type"], e.get("action")) for e in events]
        assert ("elastic", "scale-out") in kinds
        assert ("elastic", "scale-in") in kinds
        assert ("fault", "detect") in kinds
        marks = [e["mark"] for e in events if e["type"] == "elastic"]
        assert marks == ["! scale-out devices 6,7", "! scale-in devices 6,7"]
        times = [e["time"] for e in events]
        assert times == sorted(times)


class TestUnarmedRegression:
    """Telemetry off must mean bit-identical behavior to before."""

    def test_executor_timings_identical(self, planned):
        _, _, plan = planned
        bare = PlanExecutor(plan.topology).execute(plan, 2048)
        traced = PlanExecutor(
            plan.topology, tracer=Tracer(), metrics=MetricsRegistry()
        ).execute(plan, 2048)
        assert bare.total_time == traced.total_time
        assert bare.stage_finish == traced.stage_finish

    def test_protocol_timings_identical(self, planned):
        _, rel, plan = planned
        bare = ProtocolRunner(rel, plan).run_timed(512)
        tracer = Tracer()
        armed = ProtocolRunner(rel, plan, tracer=tracer).run_timed(512)
        assert bare.total_time == armed.total_time
        assert bare.device_finish == armed.device_finish
        assert len(tracer.events()) > 0

    def test_training_numerics_identical(self, planned):
        graph, rel, plan = planned
        features = synthetic_features(graph, 16)
        labels = synthetic_labels(graph, 5)

        def losses(tracer, metrics):
            model = build_model("gcn", 16, 8, 5, seed=0)
            trainer = DistributedTrainer(
                rel, plan, model, features, labels,
                tracer=tracer, metrics=metrics,
            )
            return trainer.train(2)

        bare = losses(None, None)
        tracer = Tracer()
        traced = losses(tracer, MetricsRegistry())
        assert bare == traced
        assert tracer.by_cat("epoch")

    def test_single_device_numerics_identical(self, planned):
        graph, _, _ = planned
        features = synthetic_features(graph, 16)
        labels = synthetic_labels(graph, 5)

        def losses(tracer):
            model = build_model("gcn", 16, 8, 5, seed=0)
            return SingleDeviceTrainer(
                graph, model, features, labels, tracer=tracer
            ).train(2)

        tracer = Tracer()
        assert losses(None) == losses(tracer)
        assert tracer.by_cat("phase")

    def test_elastic_transitions_identical_armed(self, planned):
        """Arming a tracer across grow/shrink handoffs moves nothing."""
        from repro.elastic import ElasticPolicy
        from repro.elastic.controller import ElasticController

        graph, _, _ = planned
        features = synthetic_features(graph, 6)
        labels = synthetic_labels(graph, 4)
        schedule = [(1, "shrink", (6, 7)), (2, "grow", (6, 7))]

        def run(tracer):
            controller = ElasticController(
                graph, dgx1(), build_model("gcn", 6, 8, 4, seed=7),
                features, labels,
                elastic=ElasticPolicy(min_devices=2), tracer=tracer,
            )
            report = controller.train_with_schedule(4, schedule)
            return (list(report.losses), controller.clock,
                    [t.downtime_seconds for t in controller.transitions])

        tracer = Tracer()
        assert run(None) == run(tracer)
        assert tracer.events()

    def test_autotuner_identical_with_auditor(self, planned):
        """The audited full-fidelity rung changes no trial cost."""
        from repro.autotune import AutoTuner
        from repro.obs import CostModelAuditor

        graph, _, _ = planned
        plain = AutoTuner(graph, dgx1()).tune()
        auditor = CostModelAuditor()
        audited = AutoTuner(graph, dgx1(), auditor=auditor).tune()
        assert [t.cost for t in plain.trials] == \
            [t.cost for t in audited.trials]
        assert plain.candidate == audited.candidate
        assert len(auditor.records) > 0


class TestResilientTelemetry:
    def test_recovery_lifecycle_spans(self, planned):
        from repro.faults import DeviceCrash, FaultPlan
        from repro.gnn import ResilientTrainer

        graph, _, _ = planned
        features = synthetic_features(graph, 6)
        labels = synthetic_labels(graph, 4)

        def run(tracer):
            trainer = ResilientTrainer(
                graph, dgx1(), build_model("gcn", 6, 8, 4, seed=7),
                features, labels,
                fault_plan=FaultPlan(
                    [DeviceCrash(device=3, time=1e-6)], seed=2
                ),
                checkpoint_every=2, tracer=tracer,
            )
            return trainer.train(3)

        tracer = Tracer()
        traced = run(tracer)
        names = {s.name for s in tracer.by_track("trainer")}
        assert "bootstrap" in names
        assert "rollback" in names and "repartition" in names
        assert any(n.startswith("epoch ") for n in names)
        # Tracing changed nothing about the run itself.
        bare = run(None)
        assert bare.total_seconds == traced.total_seconds
        assert bare.losses == traced.losses
        assert bare.log.signature() == traced.log.signature()


class TestSessionTelemetry:
    def test_arm_telemetry_records_collectives(self, planned):
        from repro.api import DGCLSession

        graph, rel, _ = planned
        session = DGCLSession(dgx1())
        session.build_comm_info(graph, assignment=None, seed=0)
        session.arm_telemetry()
        features = np.random.default_rng(0).standard_normal(
            (graph.num_vertices, 4)
        ).astype(np.float32)
        blocks = session.dispatch_features(features)
        session.graph_allgather(blocks)
        assert session.tracer is not None
        phases = [s.name for s in session.tracer.by_cat("phase")]
        assert "graph_allgather" in phases
        assert session.tracer.now == pytest.approx(
            session.simulated_comm_seconds
        )

    def test_unarmed_session_comm_time_unchanged(self, planned):
        from repro.api import DGCLSession

        graph, _, _ = planned

        def comm_seconds(armed: bool) -> float:
            session = DGCLSession(dgx1())
            session.build_comm_info(graph, seed=0)
            if armed:
                session.arm_telemetry()
            features = np.zeros((graph.num_vertices, 4), dtype=np.float32)
            session.graph_allgather(session.dispatch_features(features))
            return session.simulated_comm_seconds

        assert comm_seconds(False) == comm_seconds(True)


class TestConsole:
    def test_env_controls_level(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG", "info")
        console.set_verbosity(None)
        console.info("hello %d", 7)
        console.debug("hidden")
        err = capsys.readouterr().err
        assert "[repro] hello 7" in err and "hidden" not in err

    def test_explicit_setting_beats_env(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG", "debug")
        console.set_verbosity(console.QUIET)
        try:
            console.info("silent")
            assert capsys.readouterr().err == ""
        finally:
            console.set_verbosity(None)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            console.set_verbosity("shout")


class TestTimelineFaultMerge:
    def test_fault_marks_in_events_and_gantt(self, planned):
        _, _, plan = planned
        report = PlanExecutor(plan.topology).execute(plan, 1024)
        log = FaultLog()
        log.append(report.total_time / 2, "link", "detect", "wire-1",
                   "stalled transfers")
        events = timeline_events(report, fault_log=log)
        marks = [e for e in events if e.label.startswith("!")]
        assert len(marks) == 1 and marks[0].duration == 0.0
        chart = render_gantt(report, max_rows=500, fault_log=log)
        assert "! detect wire-1" in chart
        # Without the log the chart is untouched.
        assert "!" not in render_gantt(report, max_rows=500)


class TestCliTelemetry:
    def test_evaluate_json_and_trace(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        code = main([
            "evaluate", "--dataset", "reddit", "--gpus", "4",
            "--scheme", "dgcl", "--json", "--emit-trace", str(out),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schemes"][0]["scheme"] == "dgcl"
        assert payload["schemes"][0]["status"] == "ok"
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_plan_json(self, capsys):
        code = main(["plan", "--dataset", "reddit", "--gpus", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["num_tuples"] > 0
        assert payload["partition"]["num_parts"] == 4

    def test_trace_verb_writes_chrome_file(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "trace", "--dataset", "reddit", "--gpus", "4",
            "--scheme", "dgcl", "--output", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert "comm.flows" in capsys.readouterr().out

    def test_trace_verb_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main([
            "trace", "--dataset", "reddit", "--gpus", "4",
            "--format", "jsonl", "--output", str(out),
        ])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines
        parsed = [json.loads(line) for line in lines]
        assert any(e["type"] == "span" for e in parsed)
        assert parsed[-1]["type"] == "metrics"
