"""Acceptance test for the serving PR: overload + faults.

Under a pinned 2x overload burst — with and without concurrently
injected device/link faults — the control plane must:

* shed load through **typed rejections only** (zero silent drops),
* engage the degradation ladder and bring every tenant's windowed
  p99 back within its SLO by the end of the horizon, and
* produce bit-identical reports across two seeded executions.
"""

from __future__ import annotations

import pytest

from repro.chaos.oracles import check_serve_accounting, check_serve_deadline
from repro.faults import DeviceCrash, FaultPlan, LinkLoss
from repro.serve import build_scenario


@pytest.fixture(scope="module")
def session():
    return build_scenario("overload")


@pytest.fixture(scope="module")
def report(session):
    return session.run(seed=0)


@pytest.fixture(scope="module")
def fault_plan(session):
    # One link sacrificed for the whole run plus a mid-horizon crash,
    # both aimed at the small (pre-autoscale) deployment.
    conn = sorted(session.small.connections)[0]
    horizon = session.config.horizon
    return FaultPlan([
        LinkLoss(connection=conn, time=0.0),
        DeviceCrash(device=1, time=0.45 * horizon),
    ], seed=0)


class TestOverloadWithoutFaults:
    def test_typed_outcomes_only_zero_silent_drops(self, report):
        assert report.unaccounted == 0
        assert check_serve_accounting(report) == []
        assert check_serve_deadline(report) == []

    def test_overload_actually_sheds(self, report):
        counts = report.outcome_counts()
        assert counts["rejected-queue"] + counts["rejected-shed"] > 0
        assert report.completed > 0

    def test_ladder_engages_and_slo_recovers(self, report):
        engagements = [t for t in report.ladder if t["direction"] == "engage"]
        assert engagements, "2x overload must climb the ladder"
        first_engage = engagements[0]["window"]
        # Pain was real: some window at or after the engagement had a
        # violating tenant ...
        assert any(w["violating"] for w in report.windows[first_engage:-1])
        # ... and after the ladder (and autoscale) have acted, the
        # windowed p99 of every tenant is back inside its SLO.
        assert report.windows[-1]["violating"] == []

    def test_autoscale_grows_under_sustained_violation(self, report):
        assert report.autoscale, "sustained violation must trigger growth"
        event = report.autoscale[0]
        assert event["to_devices"] > event["from_devices"]

    def test_bit_identical_across_reruns(self, session, report):
        again = session.run(seed=0)
        assert again.signature() == report.signature()


class TestOverloadWithFaults:
    def test_faults_keep_outcomes_typed(self, session, fault_plan):
        report = session.run(seed=0, fault_plan=fault_plan)
        assert report.unaccounted == 0
        assert check_serve_accounting(report) == []
        assert check_serve_deadline(report) == []
        assert report.completed > 0

    def test_faulted_run_is_deterministic(self, session, fault_plan):
        a = session.run(seed=0, fault_plan=fault_plan)
        b = session.run(seed=0, fault_plan=fault_plan)
        assert a.signature() == b.signature()

    def test_faults_change_the_run(self, session, fault_plan, report):
        faulted = session.run(seed=0, fault_plan=fault_plan)
        assert faulted.signature() != report.signature()
