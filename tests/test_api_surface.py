"""The public API surface, pinned.

``repro.api`` is the compatibility contract of the library: the names
in ``__all__`` and their signatures are what Listing-1 scripts, the
docs, and downstream callers are written against.  This snapshot makes
any change to that surface an *explicit* diff in review instead of an
accidental side effect — if a failure lands here, either revert the
signature change or update the snapshot (and ``docs/api.md``)
deliberately.
"""

from __future__ import annotations

import inspect

import repro.api as api

#: Exactly the names the module exports, alphabetical.
EXPECTED_ALL = [
    "DGCLSession",
    "PlanReport",
    "arm_telemetry",
    "build_comm_info",
    "communication_plan",
    "dispatch_features",
    "fault_log",
    "graph_allgather",
    "init",
    "inject_faults",
    "local_graphs",
    "profile",
    "register_scheme",
    "scatter_gradients",
    "serve",
    "session",
    "shutdown",
    "tune",
]

#: Module-level functions: name -> str(inspect.signature).
EXPECTED_FUNCTIONS = {
    "arm_telemetry":
        "(tracer: 'Optional[Tracer]' = None, "
        "metrics: 'Optional[MetricsRegistry]' = None, "
        "auditor: 'Optional[CostModelAuditor]' = None, "
        "recorder: 'Optional[FlightRecorder]' = None) -> 'DGCLSession'",
    "profile":
        "(meta: 'Optional[Dict[str, object]]' = None) -> 'RunProfile'",
    "build_comm_info": "(graph: 'Graph', **kwargs) -> 'PlanReport'",
    "communication_plan": "() -> 'CommPlan'",
    "dispatch_features": "(features: 'np.ndarray') -> 'List[np.ndarray]'",
    "fault_log": "() -> 'FaultLog'",
    "graph_allgather":
        "(local_embeddings: 'List[np.ndarray]') -> 'List[np.ndarray]'",
    "init":
        "(topology: 'Topology', fault_plan: 'Optional[FaultPlan]' = None, "
        "strategy: 'str' = 'spst', plan_cache=None, "
        "engine: 'str' = 'vectorized', fidelity: 'str' = 'event', "
        "elastic: 'Optional[ElasticPolicy]' = None) "
        "-> 'DGCLSession'",
    "inject_faults": "(fault_plan) -> 'FaultInjector'",
    "local_graphs": "() -> 'List[LocalGraph]'",
    "register_scheme":
        "(name: 'str', *, builder: 'Optional[Callable]' = None, "
        "cost_fn: 'Optional[Callable]' = None, version: 'str' = '1', "
        "aliases: 'Sequence[str]' = (), description: 'str' = '', "
        "feasible: 'Optional[Callable[[object], bool]]' = None, "
        "tunable_method: 'bool' = False, tunable_chunks: 'bool' = False, "
        "staleness_options: 'Sequence[int]' = (0,), "
        "replace_existing: 'bool' = False) -> 'SchemeSpec'",
    "scatter_gradients":
        "(full_grads: 'List[np.ndarray]') -> 'List[np.ndarray]'",
    "serve":
        "(scenario: 'str' = 'poisson', *, gpus: 'int' = 8, "
        "topology: 'str' = 'dgx', seed: 'int' = 0, "
        "horizon_scale: 'float' = 1.0, "
        "fault_plan: 'Optional[FaultPlan]' = None, plan_cache=None) "
        "-> 'ServeReport'",
    "session":
        "(topology: 'Topology', *, fault_plan: 'Optional[FaultPlan]' = None, "
        "strategy: 'str' = 'spst', plan_cache=None, "
        "engine: 'str' = 'vectorized', fidelity: 'str' = 'event', "
        "elastic: 'Optional[ElasticPolicy]' = None) "
        "-> 'DGCLSession'",
    "shutdown": "() -> 'None'",
    "tune": "(graph: 'Graph', **kwargs)",
}

#: Session methods whose keyword-only contract the docs promise.
EXPECTED_METHODS = {
    "DGCLSession.__init__":
        "(self, topology: 'Topology', fault_plan: 'Optional[FaultPlan]' = "
        "None, strategy: 'str' = 'spst', plan_cache=None, "
        "engine: 'str' = 'vectorized', fidelity: 'str' = 'event', "
        "elastic: 'Optional[ElasticPolicy]' = None) -> 'None'",
    "DGCLSession.build_comm_info":
        "(self, graph: 'Graph', *, assignment: 'Optional[np.ndarray]' = "
        "None, seed: 'int' = 0, chunks_per_class: 'int' = 4, "
        "strategy: 'Optional[str]' = None, engine: 'Optional[str]' = None, "
        "tune_kwargs: 'Optional[dict]' = None) -> 'PlanReport'",
    "DGCLSession.tune":
        "(self, graph: 'Graph', *, seed: 'int' = 0, "
        "chunks_per_class: 'int' = 4, plan_based_only: 'bool' = False, "
        "assignment: 'Optional[np.ndarray]' = None, **kwargs)",
    "DGCLSession.sample_loader":
        "(self, graph: 'Graph', *, batch_size: 'int', "
        "fanouts: 'Optional[Tuple[int, ...]]' = None, "
        "hops: 'Optional[int]' = None, "
        "train_vertices: 'Optional[np.ndarray]' = None, "
        "assignment: 'Optional[np.ndarray]' = None, seed: 'int' = 0, "
        "chunks_per_class: 'int' = 4, drop_last: 'bool' = True, "
        "incremental: 'bool' = True)",
}

#: PlanReport's dataclass fields, in declaration order.
EXPECTED_PLAN_REPORT_FIELDS = [
    "plan", "plan_source", "engine", "fidelity",
    "stage_costs", "total_cost", "tune_report",
]


class TestApiSurface:
    def test_all_is_exact(self):
        assert sorted(api.__all__) == EXPECTED_ALL
        for name in api.__all__:
            assert hasattr(api, name)

    def test_function_signatures(self):
        for name, expected in EXPECTED_FUNCTIONS.items():
            got = str(inspect.signature(getattr(api, name)))
            assert got == expected, f"{name}: {got!r} != {expected!r}"

    def test_method_signatures(self):
        for path, expected in EXPECTED_METHODS.items():
            cls_name, meth_name = path.split(".")
            obj = getattr(getattr(api, cls_name), meth_name)
            got = str(inspect.signature(obj))
            assert got == expected, f"{path}: {got!r} != {expected!r}"

    def test_plan_report_fields(self):
        import dataclasses

        fields = [f.name for f in dataclasses.fields(api.PlanReport)]
        assert fields == EXPECTED_PLAN_REPORT_FIELDS

    def test_knob_vocabularies(self):
        assert api.SESSION_ENGINES == ("scalar", "vectorized")
        assert api.SESSION_FIDELITIES == ("event", "cost")
        # The historical tuple survives, but the live vocabulary is the
        # scheme registry's — every built-in plan-based scheme included.
        assert api.SESSION_STRATEGIES == ("spst", "p2p", "auto")

    def test_session_vocabulary_is_registry_derived(self):
        from repro.schemes import session_strategy_names

        names = session_strategy_names()
        for legacy in api.SESSION_STRATEGIES:
            assert legacy in names
        for scheme in ("dgcl", "dgcl-cache", "peer-to-peer",
                       "cagnet-1.5d", "cagnet-2d", "distgnn-delayed"):
            assert scheme in names
