"""Tests for the extension features beyond the paper's core pipeline:
the static-tree ablation planner and the feature-caching strategy."""

import numpy as np
import pytest

from repro.baselines import Workload, evaluate_scheme
from repro.baselines.strategies import clear_caches
from repro.core import CommRelation, SPSTPlanner, static_tree_plan
from repro.graph.datasets import DatasetSpec
from repro.graph.generators import rmat
from repro.partition import partition
from repro.topology import dgx1, ring


@pytest.fixture(scope="module")
def relation():
    graph = rmat(300, 2400, seed=3)
    r = partition(graph, 8, seed=0)
    return CommRelation(graph, r.assignment, 8)


class TestStaticTreePlan:
    def test_valid_plan(self, relation):
        plan = static_tree_plan(relation, dgx1())
        plan.validate(relation)

    def test_spst_never_costlier(self, relation):
        """SPST's load-aware weights beat the contention-blind trees."""
        topo = dgx1()
        static = static_tree_plan(relation, topo)
        spst = SPSTPlanner(topo, seed=0).plan(relation)
        assert spst.estimated_cost(1024) <= static.estimated_cost(1024)

    def test_static_still_prefers_fast_links(self, relation):
        plan = static_tree_plan(relation, dgx1())
        volumes = plan.volume_by_kind()
        nvlink = sum(v for k, v in volumes.items() if k.is_nvlink)
        other = sum(v for k, v in volumes.items() if not k.is_nvlink)
        assert nvlink > other

    def test_works_on_ring(self, relation):
        plan = static_tree_plan(relation, ring(8))
        plan.validate(relation)

    def test_classes_share_trees(self, relation):
        """Unlike SPST, the static planner reuses one tree per signature:
        all vertices of a class take identical routes."""
        plan = static_tree_plan(relation, dgx1())
        by_signature = {}
        for route in plan.routes:
            key = (route.source, route.destinations)
            by_signature.setdefault(key, set()).add(route.edges)
        assert all(len(trees) == 1 for trees in by_signature.values())


def _workload(feature_size=64, memory=None):
    graph = rmat(400, 4000, seed=11)
    spec = DatasetSpec(
        name="synthetic-ext", num_vertices=400, num_edges=4000,
        feature_size=feature_size, hidden_size=16, num_classes=4,
        builder=lambda s: graph, paper_vertices="-", paper_edges="-",
        paper_avg_degree=10.0,
    )
    topo = dgx1() if memory is None else dgx1(memory_bytes=memory)
    return Workload("synthetic-ext", "gcn", topo, graph=graph, spec=spec)


class TestFeatureCaching:
    def setup_method(self):
        clear_caches()

    def test_cache_reduces_comm(self):
        w = _workload()
        plain = evaluate_scheme(w, scheme="dgcl")
        cached = evaluate_scheme(w, scheme="dgcl-cache")
        assert cached.ok and plain.ok
        assert cached.comm_time < plain.comm_time
        assert cached.compute_time == pytest.approx(plain.compute_time)

    def test_cache_skips_exactly_the_feature_boundary(self):
        w = _workload()
        plain = evaluate_scheme(w, scheme="dgcl")
        cached = evaluate_scheme(w, scheme="dgcl-cache")
        # backward traffic is identical; only the forward feature
        # allgather disappears.
        assert cached.detail["backward"] == pytest.approx(
            plain.detail["backward"]
        )
        assert cached.detail["forward"] < plain.detail["forward"]

    def test_cache_costs_memory(self):
        """Fat cached features can push a device over its budget."""
        # Find a capacity where plain fits but the feature cache OOMs;
        # the cache increment is ~1 MB here, so sweep finely.
        for memory in np.arange(23e6, 19e6, -0.2e6):
            clear_caches()
            w = _workload(feature_size=2048, memory=int(memory))
            plain = evaluate_scheme(w, scheme="dgcl")
            cached = evaluate_scheme(w, scheme="dgcl-cache")
            if plain.ok and cached.status == "oom":
                return
        pytest.fail("feature caching never hit the memory wall")
