"""Tests for end-to-end scheme evaluation (the benchmark backbone).

To stay fast, these tests inject a small synthetic graph through the
``Workload(graph=..., spec=...)`` escape hatch rather than building the
full dataset twins.
"""

import numpy as np
import pytest

from repro.baselines import SCHEMES, Workload, evaluate_dgcl_r, evaluate_scheme
from repro.baselines.strategies import clear_caches
from repro.graph.datasets import DatasetSpec
from repro.graph.generators import rmat
from repro.topology import dgx1, dual_dgx1, single_device
from repro.topology.presets import V100_MEMORY_BYTES


def make_workload(topology, num_vertices=400, num_edges=4000,
                  feature_size=32, hidden_size=16, model="gcn", seed=0):
    graph = rmat(num_vertices, num_edges, seed=11)
    spec = DatasetSpec(
        name="synthetic",
        num_vertices=num_vertices,
        num_edges=num_edges,
        feature_size=feature_size,
        hidden_size=hidden_size,
        num_classes=4,
        builder=lambda s: graph,
        paper_vertices="-",
        paper_edges="-",
        paper_avg_degree=num_edges / num_vertices,
    )
    return Workload("synthetic", model, topology, seed=seed, graph=graph,
                    spec=spec)


@pytest.fixture(autouse=True)
def _clear():
    clear_caches()
    yield
    clear_caches()


class TestSchemeEvaluation:
    def test_all_schemes_run(self):
        w = make_workload(dgx1())
        for scheme in SCHEMES:
            r = evaluate_scheme(w, scheme=scheme)
            assert r.status in ("ok", "oom", "unsupported")
            assert r.scheme == scheme
            assert r.num_devices == 8

    def test_replication_has_zero_comm(self):
        w = make_workload(dgx1())
        r = evaluate_scheme(w, scheme="replication")
        assert r.ok and r.comm_time == 0.0
        # epoch = compute + the (tiny) weight allreduce
        assert r.epoch_time == pytest.approx(
            r.compute_time + r.detail["sync"]
        )
        assert r.detail["sync"] < 5e-6  # latency-floor microseconds

    def test_epoch_is_comm_plus_compute_plus_sync(self):
        w = make_workload(dgx1())
        for scheme in ("dgcl", "peer-to-peer", "swap"):
            r = evaluate_scheme(w, scheme=scheme)
            assert r.epoch_time == pytest.approx(
                r.comm_time + r.compute_time + r.detail["sync"]
            )
            # §6.3: GNN models are small; the allreduce is a latency
            # floor of a few microseconds (negligible at twin epochs).
            assert r.detail["sync"] < 5e-6

    def test_dgcl_comm_not_worse_than_p2p(self):
        w = make_workload(dgx1())
        dgcl = evaluate_scheme(w, scheme="dgcl")
        p2p = evaluate_scheme(w, scheme="peer-to-peer")
        assert dgcl.comm_time <= p2p.comm_time * 1.05

    def test_single_device_no_comm(self):
        w = make_workload(single_device())
        for scheme in ("dgcl", "peer-to-peer", "replication"):
            r = evaluate_scheme(w, scheme=scheme)
            assert r.ok
            assert r.comm_time == 0.0

    def test_swap_unsupported_on_two_machines(self):
        w = make_workload(dual_dgx1())
        r = evaluate_scheme(w, scheme="swap")
        assert r.status == "unsupported"

    def test_unknown_scheme(self):
        w = make_workload(dgx1())
        with pytest.raises(KeyError):
            evaluate_scheme(w, scheme="quantum")

    def test_oom_with_tiny_memory(self):
        tiny = dgx1(memory_bytes=1_000_000)
        w = make_workload(tiny)
        for scheme in ("dgcl", "peer-to-peer", "replication"):
            assert evaluate_scheme(w, scheme=scheme).status == "oom"

    def test_replication_ooms_before_partitioned(self):
        """Replication stores the closure: it must OOM at a memory size
        where the partitioned schemes still fit."""
        for cap in (60, 45, 38, 30, 26, 22):
            topo = dgx1(memory_bytes=cap * 1_000_000)
            clear_caches()
            w = make_workload(topo, num_vertices=2000, num_edges=20000,
                              feature_size=512, hidden_size=128)
            rep = evaluate_scheme(w, scheme="replication")
            part = evaluate_scheme(w, scheme="dgcl")
            if rep.status == "oom" and part.ok:
                return
        pytest.fail("no capacity separated replication from partitioning")

    def test_boundary_bytes(self):
        w = make_workload(dgx1())
        assert w.boundary_bytes() == [32 * 4, 16 * 4]

    def test_detail_breakdown(self):
        w = make_workload(dgx1())
        r = evaluate_scheme(w, scheme="dgcl")
        assert r.detail["total"] == pytest.approx(
            r.detail["forward"] + r.detail["backward"]
        )

    def test_result_ms_helper(self):
        w = make_workload(dgx1())
        r = evaluate_scheme(w, scheme="dgcl")
        assert r.ms() == pytest.approx(r.epoch_time * 1e3)


class TestDgclR:
    def test_single_machine_degenerates_to_dgcl(self):
        w = make_workload(dgx1())
        a = evaluate_dgcl_r(w)
        b = evaluate_scheme(w, scheme="dgcl")
        assert a.scheme == "dgcl-r"
        assert a.epoch_time == pytest.approx(b.epoch_time)

    def test_two_machines_runs(self):
        w = make_workload(dual_dgx1(), num_vertices=600, num_edges=6000)
        r = evaluate_dgcl_r(w)
        assert r.status in ("ok", "oom")
        if r.ok:
            assert r.comm_time >= 0.0
            assert r.compute_time > 0.0

    def test_dgcl_r_avoids_cross_machine_traffic(self):
        """DGCL-R's comm must not touch the IB connections at all.

        Verified structurally: its plans are built per machine on the
        restricted sub-topology, which contains no IB links."""
        from repro.topology import LinkKind

        topo = dual_dgx1()
        sub = topo.restrict(range(8))
        assert not any(
            c.kind == LinkKind.IB
            for link in sub.links
            for c in link.connections
        )
