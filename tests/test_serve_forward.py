"""Forward-only plan derivation (satellite of the serving PR).

Inference never runs the backward half of a training plan.  These
tests pin the contract of :mod:`repro.serve.forward`: the forward
byte count is exactly half the round trip, the backward accessor is a
typed error, batch restriction keeps tree shapes while dropping
unneeded vertices, and the batch fingerprint is a pure function of
(plan name, unique vertex set).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CommRelation, SPSTPlanner
from repro.errors import ForwardOnlyPlanError
from repro.graph.generators import rmat
from repro.partition import partition
from repro.serve.forward import (
    ForwardOnlyPlan,
    batch_fingerprint,
    forward_only,
    plan_connections,
    restrict_forward,
)
from repro.topology import topology_for_gpu_count


@pytest.fixture(scope="module")
def workload():
    graph = rmat(120, 700, seed=1)
    topo = topology_for_gpu_count(4)
    assignment = partition(graph, topo.num_devices, seed=0).assignment
    rel = CommRelation(graph, assignment, topo.num_devices)
    plan = SPSTPlanner(topo, seed=0).plan(rel)
    return graph, topo, plan


def _units(tuples) -> int:
    return int(sum(t.units for t in tuples))


class TestForwardOnly:
    def test_forward_units_are_half_the_round_trip(self, workload):
        _, _, plan = workload
        fwd = forward_only(plan)
        round_trip = _units(plan.tuples()) + _units(plan.backward_tuples())
        assert _units(fwd.tuples()) > 0
        assert 2 * _units(fwd.tuples()) == round_trip

    def test_backward_half_is_a_typed_error(self, workload):
        _, _, plan = workload
        fwd = forward_only(plan)
        with pytest.raises(ForwardOnlyPlanError):
            fwd.backward_tuples()

    def test_name_and_route_sharing(self, workload):
        _, _, plan = workload
        fwd = forward_only(plan)
        assert isinstance(fwd, ForwardOnlyPlan)
        assert fwd.name == f"{plan.name}+forward"
        assert fwd.routes is plan.routes  # zero-copy derivation

    def test_plan_connections_nonempty(self, workload):
        _, _, plan = workload
        names = plan_connections(forward_only(plan))
        assert names and all(isinstance(n, str) for n in names)


class TestRestrictForward:
    def test_subset_of_vertices_and_units(self, workload):
        graph, _, plan = workload
        keep = np.arange(0, graph.num_vertices, 3, dtype=np.int64)
        sub = restrict_forward(plan, keep)
        assert _units(sub.tuples()) <= _units(forward_only(plan).tuples())
        # every remaining route carries only requested rows
        for route in sub.routes:
            assert np.isin(route.vertices, keep).all()

    def test_empty_restriction_has_no_routes(self, workload):
        _, _, plan = workload
        sub = restrict_forward(plan, np.empty(0, dtype=np.int64))
        assert len(sub.routes) == 0
        assert _units(sub.tuples()) == 0
        assert sub.name == f"{plan.name}+batch"

    def test_unsorted_input_is_normalised(self, workload):
        graph, _, plan = workload
        keep = np.array([5, 1, 9, 1, 5], dtype=np.int64)
        a = restrict_forward(plan, keep)
        b = restrict_forward(plan, np.array([1, 5, 9], dtype=np.int64))
        assert _units(a.tuples()) == _units(b.tuples())


class TestBatchFingerprint:
    def test_invariant_under_shuffle_and_duplication(self):
        base = np.array([4, 1, 7], dtype=np.int64)
        fp = batch_fingerprint("spst+forward", base)
        assert fp == batch_fingerprint(
            "spst+forward", np.array([7, 4, 1, 4, 4], dtype=np.int64)
        )

    def test_sensitive_to_name_and_vertices(self):
        base = np.array([4, 1, 7], dtype=np.int64)
        fp = batch_fingerprint("spst+forward", base)
        assert fp != batch_fingerprint("mst+forward", base)
        assert fp != batch_fingerprint(
            "spst+forward", np.array([4, 1, 8], dtype=np.int64)
        )
