"""End-to-end fault-tolerant training: checkpoints, rollback, chaos.

The acceptance bar from the robustness issue: a seeded plan with a
permanent device crash and a degraded link must train to completion
with a final model matching the fault-free single-GPU reference, and a
zero-fault run must cost nothing extra and leave an empty fault log.
"""

import numpy as np
import pytest

import repro.api as dgcl
from repro.faults import (
    DeviceCrash,
    DeviceLostError,
    DeviceStall,
    FaultPlan,
    FlagDrop,
    LinkDegrade,
    LinkLoss,
)
from repro.gnn import (
    Adam,
    ResilientTrainer,
    SingleDeviceTrainer,
    build_gcn,
    restore,
    snapshot,
)
from repro.graph.generators import rmat
from repro.topology import dgx1


@pytest.fixture(scope="module")
def task():
    g = rmat(200, 1400, seed=4)
    rng = np.random.default_rng(0)
    features = rng.standard_normal((g.num_vertices, 6)).astype(np.float32)
    labels = rng.integers(0, 4, g.num_vertices)
    return g, features, labels


def fresh_model():
    return build_gcn(6, 8, 4, seed=7)


@pytest.fixture(scope="module")
def reference(task):
    g, features, labels = task
    trainer = SingleDeviceTrainer(g, fresh_model(), features, labels)
    for _ in range(4):
        trainer.run_epoch()
    return trainer.run_epoch(update=False).logits


@pytest.fixture(scope="module")
def fault_free(task):
    g, features, labels = task
    trainer = ResilientTrainer(
        g, dgx1(), fresh_model(), features, labels, checkpoint_every=2
    )
    report = trainer.train(4)
    return trainer, report


class TestCheckpoint:
    def test_roundtrip_sgd(self, task):
        model = fresh_model()
        ckpt = snapshot(model, epoch=3, loss_history=[1.0, 0.9, 0.8])
        before = [
            {k: v.copy() for k, v in layer.params.items()}
            for layer in model.layers
        ]
        for layer in model.layers:
            for p in layer.params.values():
                p += 1.0
        assert restore(ckpt, model) == 3
        for layer, saved in zip(model.layers, before):
            for name, value in saved.items():
                assert np.array_equal(layer.params[name], value)

    def test_roundtrip_adam(self, task):
        g, features, labels = task
        model = fresh_model()
        opt = Adam(model, lr=0.01)
        trainer = SingleDeviceTrainer(g, model, features, labels,
                                      optimizer=opt)
        trainer.run_epoch()
        ckpt = snapshot(model, opt, epoch=1)
        assert ckpt.opt_state is not None and ckpt.nbytes() > 0
        step_before = opt.step_count
        m_before = [{k: v.copy() for k, v in d.items()} for d in opt._m]
        trainer.run_epoch()  # diverge
        restore(ckpt, model, opt)
        assert opt.step_count == step_before
        for restored, saved in zip(opt._m, m_before):
            for name, value in saved.items():
                assert np.array_equal(restored[name], value)

    def test_mismatched_model_rejected(self):
        ckpt = snapshot(fresh_model())
        with pytest.raises(ValueError):
            restore(ckpt, build_gcn(6, 8, 4, num_layers=3, seed=7))

    def test_stateful_optimizer_needs_state(self):
        model = fresh_model()
        ckpt = snapshot(model)  # no optimizer captured
        with pytest.raises(ValueError):
            restore(ckpt, model, Adam(model))


class TestFaultFree:
    def test_zero_cost_and_empty_log(self, fault_free):
        _, report = fault_free
        assert report.log.is_empty
        assert report.overhead_seconds == pytest.approx(0.0, abs=1e-12)
        assert report.rollbacks == 0 and report.lost_devices == []
        assert report.epochs == report.epochs_executed == 4

    def test_matches_single_device(self, fault_free, reference):
        trainer, _ = fault_free
        assert np.allclose(
            trainer.gather_logits(), reference, rtol=1e-4, atol=1e-5
        )


class TestChaosWithoutTopologyChange:
    def test_bit_identical_to_fault_free(self, task, fault_free):
        """Degrades, drops and stalls slow the clock, never the math."""
        g, features, labels = task
        ff_trainer, ff_report = fault_free
        plan = FaultPlan(
            [
                LinkDegrade(
                    connection="nv:m0:0-1:0->1", time=1e-7, factor=0.3
                ),
                FlagDrop(kind="done", device=0, stage=0, peer=1, count=2),
                DeviceStall(
                    device=2,
                    time=ff_report.total_seconds * 0.5,
                    duration=2e-6,
                ),
            ],
            seed=1,
        )
        trainer = ResilientTrainer(
            g, dgx1(), fresh_model(), features, labels,
            fault_plan=plan, checkpoint_every=2,
        )
        report = trainer.train(4)
        assert np.array_equal(
            trainer.gather_logits(), ff_trainer.gather_logits()
        )
        assert report.losses == ff_report.losses
        assert report.total_seconds > ff_report.total_seconds
        assert not report.log.is_empty

    def test_dead_wire_repaired_between_epochs(self, task, fault_free):
        g, features, labels = task
        ff_trainer, ff_report = fault_free
        plan = FaultPlan(
            [LinkLoss(connection="nv:m0:0-1:0->1", time=1e-7)], seed=5
        )
        trainer = ResilientTrainer(
            g, dgx1(), fresh_model(), features, labels,
            fault_plan=plan, checkpoint_every=2,
        )
        report = trainer.train(4)
        assert np.array_equal(
            trainer.gather_logits(), ff_trainer.gather_logits()
        )
        assert report.lost_devices == []


class TestCrashRecovery:
    def test_rollback_and_repartition(self, task, fault_free, reference):
        """The acceptance scenario: crash + degraded QPI hop."""
        g, features, labels = task
        _, ff_report = fault_free
        t_crash = ff_report.total_seconds * 0.6
        plan = FaultPlan(
            [
                DeviceCrash(device=3, time=float(t_crash)),
                LinkDegrade(
                    connection="qpi:m0:0->1", time=1e-7, factor=0.4
                ),
            ],
            seed=2,
        )
        trainer = ResilientTrainer(
            g, dgx1(), fresh_model(), features, labels,
            fault_plan=plan, checkpoint_every=2,
        )
        report = trainer.train(4)
        assert report.rollbacks >= 1
        assert report.lost_devices == [3]
        assert report.epochs == 4
        assert report.epochs_executed > 4 or report.rollbacks == 1
        assert trainer.topology.num_devices == 7
        assert np.allclose(
            trainer.gather_logits(), reference, rtol=1e-4, atol=1e-5
        )
        actions = report.log.counts()
        assert actions.get("rollback", 0) >= 1
        assert actions.get("detect", 0) >= 1

    def test_total_loss_of_cluster_is_typed(self, task):
        g, features, labels = task
        plan = FaultPlan(
            [DeviceCrash(device=d, time=1e-6) for d in range(8)], seed=3
        )
        trainer = ResilientTrainer(
            g, dgx1(), fresh_model(), features, labels, fault_plan=plan
        )
        with pytest.raises(DeviceLostError):
            trainer.train(4)

    def test_reproducible_report(self, task, fault_free):
        g, features, labels = task
        _, ff_report = fault_free
        t_crash = float(ff_report.total_seconds * 0.6)

        def run():
            plan = FaultPlan([DeviceCrash(device=3, time=t_crash)], seed=2)
            trainer = ResilientTrainer(
                g, dgx1(), fresh_model(), features, labels,
                fault_plan=plan, checkpoint_every=2,
            )
            report = trainer.train(4)
            return report.total_seconds, report.log.signature()

        assert run() == run()


class TestSessionAPI:
    def test_listing1_with_chaos(self, task, tmp_path):
        g, features, labels = task
        clean = dgcl.DGCLSession(dgx1())
        clean.build_comm_info(g)
        local = clean.dispatch_features(features)
        clean_rows = clean.graph_allgather(local)
        clean_seconds = clean.simulated_comm_seconds

        spec = tmp_path / "faults.json"
        FaultPlan(
            [LinkDegrade(connection="qpi:m0:0->1", time=0.0, factor=0.2)],
            seed=9,
        ).save(spec)
        chaotic = dgcl.DGCLSession(dgx1())
        chaotic.build_comm_info(g)
        chaotic.inject_faults(spec)  # accepts a --fault-spec path
        rows = chaotic.graph_allgather(chaotic.dispatch_features(features))
        assert all(np.array_equal(a, b) for a, b in zip(rows, clean_rows))
        assert chaotic.simulated_comm_seconds >= clean_seconds

    def test_dead_wire_repairs_session_plan(self, task):
        g, features, labels = task
        session = dgcl.DGCLSession(
            dgx1(),
            fault_plan=FaultPlan(
                [LinkLoss(connection="nv:m0:0-1:0->1", time=0.0)], seed=4
            ),
        )
        session.build_comm_info(g)
        clean = dgcl.DGCLSession(dgx1())
        clean.build_comm_info(g)
        rows = session.graph_allgather(session.dispatch_features(features))
        expected = clean.graph_allgather(clean.dispatch_features(features))
        assert all(np.array_equal(a, b) for a, b in zip(rows, expected))
        assert len(session.fault_log.by_action("repair")) >= 1

    def test_module_level_functions(self, task):
        g, _, _ = task
        try:
            dgcl.init(dgx1())
            dgcl.build_comm_info(g)
            assert dgcl.fault_log().is_empty
            dgcl.inject_faults(
                FaultPlan([LinkLoss(connection="nv:m0:0-1:0->1", time=0.0)])
            )
            assert dgcl.fault_log() is not None
        finally:
            dgcl.shutdown()


class TestCLI:
    def test_fault_spec_flag_parses(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["train", "--fault-spec", "chaos.json", "--checkpoint-every", "3"]
        )
        assert args.fault_spec == "chaos.json"
        assert args.checkpoint_every == 3
