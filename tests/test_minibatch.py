"""Mini-batch trainer: oracle gradient parity and the session surface."""

import numpy as np
import pytest

from repro.api import DGCLSession
from repro.gnn import (
    MiniBatchOracle,
    MiniBatchTrainer,
    build_gcn,
)
from repro.graph.datasets import synthetic_features, synthetic_labels
from repro.graph.generators import rmat
from repro.partition import partition
from repro.sampling import BatchPlanner, NeighborSampler, SeedLoader
from repro.topology import topology_for_gpu_count

FEATURES, HIDDEN, CLASSES = 6, 8, 4


@pytest.fixture(scope="module")
def workload():
    g = rmat(200, 1400, seed=4)
    return (
        g,
        synthetic_features(g, FEATURES, seed=0),
        synthetic_labels(g, CLASSES, seed=0),
    )


def make_pipeline(g, seed=1, gpus=4):
    topology = topology_for_gpu_count(gpus)
    assignment = partition(g, gpus, seed=0).assignment
    loader = SeedLoader(g, batch_size=32, seed=seed)
    sampler = NeighborSampler(g, (5, 5), seed=seed)
    planner = BatchPlanner(g, assignment, topology)
    return loader, sampler, planner


class TestGradientParity:
    def test_per_batch_gradients_match_oracle(self, workload):
        """The acceptance bar: distributed grads == oracle grads."""
        g, features, labels = workload
        loader, sampler, planner = make_pipeline(g)
        trainer = MiniBatchTrainer(
            build_gcn(FEATURES, HIDDEN, CLASSES, seed=7),
            features, labels, sampler, loader, planner,
        )
        oracle = MiniBatchOracle(
            build_gcn(FEATURES, HIDDEN, CLASSES, seed=7), features, labels
        )
        checked = 0
        for planned in trainer.batch_stream(0):
            loss_d, grads_d = trainer.batch_gradients(planned)
            loss_o, grads_o = oracle.batch_gradients(planned.subgraph)
            assert np.allclose(loss_d, loss_o, rtol=1e-5, atol=1e-8)
            for layer_d, layer_o in zip(grads_d, grads_o):
                assert layer_d.keys() == layer_o.keys()
                for name in layer_o:
                    assert np.allclose(
                        layer_d[name], layer_o[name],
                        rtol=1e-5, atol=1e-7,
                    ), name
            # Step both so parity holds along the whole trajectory,
            # not just at the shared initialisation.
            trainer.optimizer.step(grads_d)
            oracle.optimizer.step(grads_o)
            checked += 1
        assert checked == loader.num_batches

    def test_loss_trajectory_matches_over_epochs(self, workload):
        g, features, labels = workload
        loader, sampler, planner = make_pipeline(g)
        trainer = MiniBatchTrainer(
            build_gcn(FEATURES, HIDDEN, CLASSES, seed=7),
            features, labels, sampler, loader, planner,
        )
        trainer.train(2)
        oracle = MiniBatchOracle(
            build_gcn(FEATURES, HIDDEN, CLASSES, seed=7), features, labels
        )
        for epoch in range(2):
            base = epoch * loader.num_batches
            for i, seeds in enumerate(loader.batches(epoch)):
                oracle.run_batch(sampler.sample(seeds, batch_index=base + i))
        assert np.allclose(
            trainer.loss_history, oracle.loss_history, rtol=1e-4, atol=1e-6
        )

    def test_training_is_deterministic(self, workload):
        g, features, labels = workload

        def run():
            loader, sampler, planner = make_pipeline(g)
            trainer = MiniBatchTrainer(
                build_gcn(FEATURES, HIDDEN, CLASSES, seed=7),
                features, labels, sampler, loader, planner,
            )
            trainer.train(1)
            return trainer.loss_history, [
                r.plan_source for r in trainer.results
            ]

        assert run() == run()

    def test_results_carry_plan_sources(self, workload):
        g, features, labels = workload
        loader, sampler, planner = make_pipeline(g)
        trainer = MiniBatchTrainer(
            build_gcn(FEATURES, HIDDEN, CLASSES, seed=7),
            features, labels, sampler, loader, planner,
        )
        results = trainer.train_epoch(0)
        assert results[0].plan_source == "planned"
        assert all(
            r.plan_source in ("patched", "replanned") for r in results[1:]
        )
        assert all(r.num_seeds == 32 for r in results)

    def test_input_validation(self, workload):
        g, features, labels = workload
        loader, sampler, planner = make_pipeline(g)
        with pytest.raises(ValueError):
            MiniBatchTrainer(
                build_gcn(FEATURES + 1, HIDDEN, CLASSES, seed=7),
                features, labels, sampler, loader, planner,
            )
        with pytest.raises(ValueError):
            MiniBatchOracle(
                build_gcn(FEATURES, HIDDEN, CLASSES, seed=7),
                features[:-1], labels,
            )


class TestSessionSurface:
    def test_sample_loader_round_trip(self, workload):
        g, features, labels = workload
        with DGCLSession(topology_for_gpu_count(4)) as session:
            loader, sampler, planner = session.sample_loader(
                g, batch_size=32, fanouts=(5, 5)
            )
            trainer = MiniBatchTrainer(
                build_gcn(FEATURES, HIDDEN, CLASSES, seed=7),
                features, labels, sampler, loader, planner,
            )
            results = trainer.train_epoch(0)
            assert len(results) == loader.num_batches
            assert all(np.isfinite(r.loss) for r in results)

    def test_sample_loader_uses_session_cache(self, workload, tmp_path):
        g, _, _ = workload
        topology = topology_for_gpu_count(4)
        with DGCLSession(topology, plan_cache=str(tmp_path)) as session:
            loader, sampler, planner = session.sample_loader(
                g, batch_size=32, fanouts=(5, 5)
            )
            for i, seeds in enumerate(loader.batches(0)):
                planner.plan_batch(sampler.sample(seeds, batch_index=i))
            stored = session.plan_cache.stats.stores
            assert stored == loader.num_batches
        with DGCLSession(topology, plan_cache=str(tmp_path)) as session:
            loader, sampler, planner = session.sample_loader(
                g, batch_size=32, fanouts=(5, 5)
            )
            planned = [
                planner.plan_batch(sampler.sample(seeds, batch_index=i))
                for i, seeds in enumerate(loader.batches(0))
            ]
            assert all(p.plan_source == "cache" for p in planned)

    def test_sample_loader_khop_and_validation(self, workload):
        g, _, _ = workload
        with DGCLSession(topology_for_gpu_count(4)) as session:
            loader, sampler, planner = session.sample_loader(
                g, batch_size=16, hops=1
            )
            batch = sampler.sample(next(loader.batches(0)))
            assert planner.plan_batch(batch).plan_source == "planned"
            with pytest.raises(ValueError):
                session.sample_loader(g, batch_size=16)
            with pytest.raises(ValueError):
                session.sample_loader(
                    g, batch_size=16, fanouts=(4,), hops=1
                )
