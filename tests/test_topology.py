"""Unit tests for the hardware topology model and presets."""

import pytest

from repro.topology.links import BANDWIDTH_GBPS, LinkKind, PhysicalConnection
from repro.topology.presets import (
    dgx1,
    dual_dgx1,
    fully_connected,
    pcie_only,
    ring,
    single_device,
    topology_for_gpu_count,
)
from repro.topology.topology import Link, Topology, TopologyBuilder


class TestLinks:
    def test_table1_bandwidths(self):
        # Paper Table 1, GB/s.
        assert BANDWIDTH_GBPS[LinkKind.NV2] == 48.35
        assert BANDWIDTH_GBPS[LinkKind.NV1] == 24.22
        assert BANDWIDTH_GBPS[LinkKind.PCIE] == 11.13
        assert BANDWIDTH_GBPS[LinkKind.QPI] == 9.56
        assert BANDWIDTH_GBPS[LinkKind.IB] == 6.37
        assert BANDWIDTH_GBPS[LinkKind.ETHERNET] == 3.12

    def test_connection_defaults_to_kind_bandwidth(self):
        c = PhysicalConnection("x", LinkKind.QPI)
        assert c.bandwidth == 9.56
        assert c.bytes_per_second == pytest.approx(9.56e9)

    def test_connection_custom_bandwidth(self):
        c = PhysicalConnection("x", LinkKind.IB, bandwidth=12.5)
        assert c.bandwidth == 12.5

    def test_nvlink_kinds(self):
        assert LinkKind.NV1.is_nvlink and LinkKind.NV2.is_nvlink
        assert not LinkKind.PCIE.is_nvlink


class TestLink:
    def test_bottleneck_and_kind(self):
        fast = PhysicalConnection("a", LinkKind.PCIE)
        slow = PhysicalConnection("b", LinkKind.QPI)
        link = Link(0, 1, (fast, slow, fast))
        assert link.bottleneck_bandwidth == 9.56
        assert link.kind == LinkKind.QPI
        assert not link.is_nvlink

    def test_rejects_empty_path(self):
        with pytest.raises(ValueError):
            Link(0, 1, ())

    def test_rejects_self_link(self):
        c = PhysicalConnection("a", LinkKind.NV1)
        with pytest.raises(ValueError):
            Link(2, 2, (c,))


class TestBuilder:
    def test_duplex_link_uses_separate_connections(self):
        b = TopologyBuilder()
        b.add_device()
        b.add_device()
        b.add_duplex_link(0, 1, LinkKind.NV1)
        topo = b.build()
        fwd = topo.direct_link(0, 1)
        rev = topo.direct_link(1, 0)
        assert fwd.connections[0] is not rev.connections[0]

    def test_shared_connection_is_one_object(self):
        b = TopologyBuilder()
        for _ in range(3):
            b.add_device()
        shared = b.connection("bus", LinkKind.QPI)
        b.add_link(0, 2, (shared,))
        b.add_link(1, 2, (shared,))
        topo = b.build()
        l1 = topo.direct_link(0, 2)
        l2 = topo.direct_link(1, 2)
        assert l1.connections[0] is l2.connections[0]

    def test_conflicting_connection_names_rejected(self):
        b = TopologyBuilder()
        b.add_device(); b.add_device()
        b.add_link(0, 1, (PhysicalConnection("dup", LinkKind.NV1),))
        b.add_link(1, 0, (PhysicalConnection("dup", LinkKind.NV2),))
        with pytest.raises(ValueError, match="dup"):
            b.build()


class TestDgx1:
    def test_eight_devices_connected(self):
        topo = dgx1()
        assert topo.num_devices == 8
        assert topo.is_strongly_connected()

    def test_every_pair_has_a_direct_link(self):
        topo = dgx1()
        for a in range(8):
            for b in range(8):
                if a != b:
                    assert topo.direct_link(a, b) is not None

    def test_nvlink_two_hop_property(self):
        """Paper §3: all GPU pairs reachable within two NVLink hops."""
        topo = dgx1()
        nv = {(l.src, l.dst) for l in topo.links if l.is_nvlink}
        for a in range(8):
            for b in range(8):
                if a == b or (a, b) in nv:
                    continue
                assert any((a, m) in nv and (m, b) in nv for m in range(8)), (a, b)

    def test_each_gpu_has_six_nvlink_lanes(self):
        topo = dgx1()
        lanes = [0] * 8
        for link in topo.links:
            if link.is_nvlink:
                lanes[link.src] += 2 if link.kind == LinkKind.NV2 else 1
        # each direction counted once per GPU: 6 outgoing lanes each
        assert lanes == [6] * 8

    def test_cross_socket_path_traverses_qpi(self):
        topo = dgx1()
        links = topo.links_between(0, 5)
        slow = [l for l in links if not l.is_nvlink]
        assert slow and any(
            c.kind == LinkKind.QPI for l in slow for c in l.connections
        )

    def test_restriction_keeps_nvlink_clique(self):
        """First 4 GPUs keep direct NVLink (paper: DGCL == p2p there)."""
        topo = dgx1(4)
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert topo.direct_link(a, b).is_nvlink

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            dgx1(9)

    def test_host_paths_present(self):
        topo = dgx1()
        for d in topo.devices():
            assert topo.has_host_staging(d)
            assert topo.host_write_path(d)
            assert topo.host_read_path(d)


class TestDualDgx1:
    def test_sixteen_devices_two_machines(self):
        topo = dual_dgx1()
        assert topo.num_devices == 16
        assert topo.num_machines() == 2
        assert topo.is_strongly_connected()

    def test_cross_machine_links_share_one_nic_per_machine(self):
        topo = dual_dgx1()
        ib_conns = set()
        for link in topo.links:
            if topo.machine_of[link.src] != topo.machine_of[link.dst]:
                ib_hops = [c for c in link.connections if c.kind == LinkKind.IB]
                assert len(ib_hops) == 2  # sender NIC out + receiver NIC in
                ib_conns.update(h.name for h in ib_hops)
        assert ib_conns == {"ib:m0:out", "ib:m0:in", "ib:m1:out", "ib:m1:in"}

    def test_multi_dgx1_scales_and_shares_nics(self):
        from repro.topology import multi_dgx1

        topo = multi_dgx1(3)
        assert topo.num_devices == 24
        assert topo.num_machines() == 3
        assert topo.is_strongly_connected()
        # m0 -> m1 and m0 -> m2 traffic contend on m0's single NIC.
        l1 = topo.direct_link(0, 8)
        l2 = topo.direct_link(0, 16)
        shared = {c.name for c in l1.connections} & {
            c.name for c in l2.connections
        }
        assert "ib:m0:out" in shared

    def test_multi_dgx1_validates_count(self):
        from repro.topology import multi_dgx1

        with pytest.raises(ValueError):
            multi_dgx1(0)

    def test_machine_members(self):
        topo = dual_dgx1()
        members = topo.machine_members()
        assert sorted(members[0]) == list(range(8))
        assert sorted(members[1]) == list(range(8, 16))


class TestOtherPresets:
    def test_pcie_only_has_no_nvlink(self):
        topo = pcie_only()
        assert not any(l.is_nvlink for l in topo.links)
        assert topo.is_strongly_connected()

    def test_pcie_only_memory_default(self):
        topo = pcie_only()
        assert topo.memory_bytes[0] == 120_000_000

    def test_ring_shape(self):
        topo = ring(6)
        assert topo.num_links == 12  # duplex
        assert topo.direct_link(0, 3) is None
        assert topo.is_strongly_connected()

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring(1)

    def test_fully_connected(self):
        topo = fully_connected(4, LinkKind.NV2)
        assert topo.num_links == 12
        assert all(l.kind == LinkKind.NV2 for l in topo.links)

    def test_single_device(self):
        topo = single_device()
        assert topo.num_devices == 1
        assert topo.num_links == 0

    def test_topology_for_gpu_count(self):
        assert topology_for_gpu_count(1).num_devices == 1
        assert topology_for_gpu_count(4).num_devices == 4
        assert topology_for_gpu_count(16).num_machines() == 2
        with pytest.raises(ValueError):
            topology_for_gpu_count(12)


class TestRestrict:
    def test_restrict_relabels(self):
        topo = dgx1()
        sub = topo.restrict([2, 3, 4])
        assert sub.num_devices == 3
        assert sub.direct_link(0, 1) is not None  # old 2-3 NV2
        assert sub.direct_link(0, 1).kind == LinkKind.NV2

    def test_restrict_preserves_metadata(self):
        topo = dgx1()
        sub = topo.restrict([0, 4])
        assert sub.socket_of == (0, 1)
