"""Cache-key fingerprints: stability and invalidation semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune.fingerprint import (
    CacheKey,
    cache_key,
    config_fingerprint,
    graph_fingerprint,
    partition_fingerprint,
    topology_fingerprint,
)
from repro.graph.csr import Graph
from repro.topology.links import LinkKind, PhysicalConnection
from repro.topology.presets import dgx1, dual_dgx1
from repro.topology.topology import Link, Topology


def _shuffled_graph(graph: Graph, seed: int) -> Graph:
    """The same edge set, constructed in a different order."""
    src, dst = graph.edges
    order = np.random.default_rng(seed).permutation(src.size)
    return Graph(src[order], dst[order], graph.num_vertices)


class TestGraphFingerprint:
    """Content addressing of the data graph."""

    def test_construction_order_invariant(self, small_graph):
        for seed in (1, 2, 3):
            assert graph_fingerprint(_shuffled_graph(small_graph, seed)) == \
                graph_fingerprint(small_graph)

    def test_edge_flip_invalidates(self, tiny_graph):
        src, dst = tiny_graph.edges
        src2, dst2 = src.copy(), dst.copy()
        src2[0], dst2[0] = dst[0], src[0]  # reverse one edge
        flipped = Graph(src2, dst2, tiny_graph.num_vertices)
        assert graph_fingerprint(flipped) != graph_fingerprint(tiny_graph)

    def test_vertex_count_matters(self, tiny_graph):
        src, dst = tiny_graph.edges
        padded = Graph(src, dst, tiny_graph.num_vertices + 1)
        assert graph_fingerprint(padded) != graph_fingerprint(tiny_graph)


class TestPartitionFingerprint:
    """Content addressing of the partition assignment."""

    def test_dtype_invariant(self):
        a32 = np.array([0, 1, 1, 0], dtype=np.int32)
        a64 = np.array([0, 1, 1, 0], dtype=np.int64)
        assert partition_fingerprint(a32) == partition_fingerprint(a64)

    def test_vertex_move_invalidates(self):
        a = np.array([0, 1, 1, 0], dtype=np.int64)
        b = a.copy()
        b[2] = 0  # one vertex moves device
        assert partition_fingerprint(a) != partition_fingerprint(b)


class TestTopologyFingerprint:
    """Structural (name-independent) addressing of the device graph."""

    def test_link_order_invariant(self):
        topo = dgx1()
        reordered = Topology(
            num_devices=topo.num_devices,
            links=list(reversed(topo.links)),
            machine_of=topo.machine_of,
            socket_of=topo.socket_of,
            switch_of=topo.switch_of,
            host_paths={d: (topo.host_write_path(d), topo.host_read_path(d))
                        for d in topo.devices() if topo.has_host_staging(d)},
            memory_bytes=topo.memory_bytes,
            name=topo.name,
        )
        assert topology_fingerprint(reordered) == topology_fingerprint(topo)

    def test_display_name_ignored(self):
        topo = dgx1()
        renamed = Topology(
            num_devices=topo.num_devices,
            links=list(topo.links),
            machine_of=topo.machine_of,
            socket_of=topo.socket_of,
            switch_of=topo.switch_of,
            host_paths={d: (topo.host_write_path(d), topo.host_read_path(d))
                        for d in topo.devices() if topo.has_host_staging(d)},
            memory_bytes=topo.memory_bytes,
            name="something-else",
        )
        assert topology_fingerprint(renamed) == topology_fingerprint(topo)

    def test_link_speed_change_invalidates(self):
        topo = dgx1()
        remap = {}
        bumped_one = False
        for link in topo.links:
            for conn in link.connections:
                if conn not in remap:
                    factor = 2.0 if not bumped_one else 1.0
                    bumped_one = True
                    remap[conn] = PhysicalConnection(
                        conn.name, conn.kind, conn.bandwidth * factor
                    )
        links = [Link(l.src, l.dst, tuple(remap[c] for c in l.connections))
                 for l in topo.links]
        faster = Topology(
            num_devices=topo.num_devices,
            links=links,
            machine_of=topo.machine_of,
            socket_of=topo.socket_of,
            switch_of=topo.switch_of,
            host_paths={d: (tuple(remap[c] for c in topo.host_write_path(d)),
                            tuple(remap[c] for c in topo.host_read_path(d)))
                        for d in topo.devices() if topo.has_host_staging(d)},
            memory_bytes=topo.memory_bytes,
            name=topo.name,
        )
        assert topology_fingerprint(faster) != topology_fingerprint(topo)

    def test_distinct_presets_differ(self):
        assert topology_fingerprint(dgx1()) != topology_fingerprint(dual_dgx1())


class TestCacheKey:
    """The combined key and its digest."""

    def test_digest_is_stable_and_config_sensitive(self, small_graph):
        topo = dgx1()
        assignment = np.arange(small_graph.num_vertices) % topo.num_devices
        k1 = cache_key(small_graph, assignment, topo, {"a": 1, "b": 2})
        k2 = cache_key(small_graph, assignment, topo, {"b": 2, "a": 1})
        assert k1 == k2 and k1.digest == k2.digest  # dict order irrelevant
        k3 = cache_key(small_graph, assignment, topo, {"a": 1, "b": 3})
        assert k3 != k1

    def test_as_dict_roundtrip_fields(self, small_graph):
        topo = dgx1()
        assignment = np.arange(small_graph.num_vertices) % topo.num_devices
        key = cache_key(small_graph, assignment, topo, {})
        doc = key.as_dict()
        assert CacheKey(**doc) == key

    def test_config_fingerprint_rejects_unserialisable(self):
        with pytest.raises(TypeError):
            config_fingerprint({"bad": object()})
