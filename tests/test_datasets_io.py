"""Tests for the dataset twins registry and edge-list I/O."""

import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.datasets import (
    DATASETS,
    load_dataset,
    synthetic_features,
    synthetic_labels,
)
from repro.graph.io import load_edge_list, save_edge_list


class TestDatasetRegistry:
    def test_four_twins_registered(self):
        assert set(DATASETS) == {"reddit", "com-orkut", "web-google", "wiki-talk"}

    def test_spec_matches_paper_table4(self):
        spec = DATASETS["reddit"]
        assert spec.feature_size == 602
        assert spec.hidden_size == 256
        assert spec.paper_avg_degree == 478.0
        assert DATASETS["com-orkut"].feature_size == 128
        assert DATASETS["web-google"].hidden_size == 256

    def test_density_ordering_matches_paper(self):
        # Reddit >> Com-Orkut >> Web-Google > Wiki-Talk by avg degree
        degs = [DATASETS[n].avg_degree
                for n in ("reddit", "com-orkut", "web-google", "wiki-talk")]
        assert degs == sorted(degs, reverse=True)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imaginary")

    @pytest.mark.slow
    def test_twin_density_is_close_to_spec(self):
        g = load_dataset("web-google")
        spec = DATASETS["web-google"]
        assert g.num_vertices == spec.num_vertices
        assert abs(g.avg_degree - spec.avg_degree) / spec.avg_degree < 0.2

    @pytest.mark.slow
    def test_cache_returns_same_object(self):
        assert load_dataset("web-google") is load_dataset("web-google")

    @pytest.mark.slow
    def test_no_cache_builds_fresh(self):
        a = load_dataset("web-google", cache=False)
        b = load_dataset("web-google", cache=False)
        assert a is not b
        assert a == b


class TestSyntheticTask:
    def test_features_shape_and_determinism(self, small_graph):
        f1 = synthetic_features(small_graph, 16, seed=0)
        f2 = synthetic_features(small_graph, 16, seed=0)
        assert f1.shape == (small_graph.num_vertices, 16)
        assert f1.dtype == np.float32
        assert np.array_equal(f1, f2)

    def test_labels_in_range(self, small_graph):
        labels = synthetic_labels(small_graph, 7, seed=0)
        assert labels.min() >= 0
        assert labels.max() < 7


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path, small_graph):
        path = tmp_path / "edges.txt"
        save_edge_list(small_graph, path)
        loaded = load_edge_list(path, num_vertices=small_graph.num_vertices)
        assert loaded == small_graph

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n1 2\n# trailing\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\njunk\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            load_edge_list(path)
