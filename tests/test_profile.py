"""Tests for the plan profiler, cost-model auditor and regression gate.

Covers the flight-recorder stack end to end: the deterministic quantile
digest, the predicted-vs-actual auditor (whose aggregate error is the
Figure-10 quantity by construction), critical-path extraction, profile
serialisation/diffing, the session and CLI surfaces, plan-cache
annotation, and the ``benchmarks/compare.py`` perf gate.
"""

import json

import numpy as np
import pytest

from repro.core import CommRelation, SPSTPlanner
from repro.graph.generators import rmat
from repro.obs import (
    CostModelAuditor,
    FlightRecorder,
    MetricsRegistry,
    QuantileDigest,
    RunProfile,
    Tracer,
    critical_path,
    diff_profiles,
    load_profile,
    profile_json,
    render_diff,
    render_profile,
    write_profile,
)
from repro.partition import partition
from repro.simulator.executor import PlanExecutor
from repro.topology import dgx1
from repro.__main__ import main


@pytest.fixture(scope="module")
def planned():
    graph = rmat(250, 1800, seed=4)
    r = partition(graph, 8, seed=0)
    rel = CommRelation(graph, r.assignment, 8)
    plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
    return graph, rel, plan


def recorded_run(plan, bpu=1024, runs=2):
    """Auditor + recorder armed executor, ``runs`` executions."""
    auditor = CostModelAuditor()
    recorder = FlightRecorder()
    executor = PlanExecutor(plan.topology, auditor=auditor, recorder=recorder)
    for i in range(runs):
        executor.execute_tuples(list(plan.tuples()), bpu, label=f"run {i}")
    return auditor, recorder


class TestQuantileDigest:
    def test_exact_matches_numpy_under_cap(self):
        rng = np.random.default_rng(3)
        values = rng.standard_normal(100)
        d = QuantileDigest()
        d.observe_many(values)
        assert d.exact
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert d.quantile(q) == pytest.approx(
                np.percentile(values, q * 100), rel=1e-12
            )

    def test_compressed_stays_close_and_bounded(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(size=5000)
        d = QuantileDigest(max_centroids=64)
        d.observe_many(values)
        assert not d.exact
        assert len(d.centroids()) <= 64
        for q in (0.5, 0.9, 0.99):
            truth = np.percentile(values, q * 100)
            assert d.quantile(q) == pytest.approx(truth, rel=0.05)
        assert d.quantile(0.0) == values.min()
        assert d.quantile(1.0) == values.max()

    def test_deterministic_across_runs(self):
        def build():
            d = QuantileDigest(max_centroids=32)
            for i in range(1000):
                d.observe((i * 2654435761 % 997) / 997.0)
            return d.quantiles()

        assert build() == build()

    def test_empty_reports_zeros(self):
        assert QuantileDigest().quantiles() == {
            "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }


class TestAuditor:
    def test_signed_error_matches_fig10_quantity(self, planned):
        """Auditor error == (actual - estimated_cost) / estimated."""
        _, _, plan = planned
        bpu = 1024
        estimated = plan.estimated_cost(bpu)
        actual = PlanExecutor(plan.topology).execute(plan, bpu).total_time
        fig10 = (actual - estimated) / estimated

        auditor = CostModelAuditor()
        PlanExecutor(plan.topology, auditor=auditor).execute(plan, bpu)
        (record,) = auditor.records
        assert record.signed_error == pytest.approx(fig10, abs=1e-12)
        assert abs(record.signed_error - fig10) < 0.01  # acceptance bound
        assert record.predicted_total == pytest.approx(estimated)
        assert record.actual_total == pytest.approx(actual)

    def test_flags_stages_over_threshold(self, planned):
        _, _, plan = planned
        strict = CostModelAuditor(threshold=1e-9)
        PlanExecutor(plan.topology, auditor=strict).execute(plan, 1024)
        (record,) = strict.records
        # Near-zero tolerance: every diverging stage is flagged.
        diverging = [s for s in record.stages
                     if abs(s.signed_error) > 1e-9]
        assert len(record.flagged_stages) == len(diverging) > 0
        assert "flag" in strict.table()

    def test_as_dict_round_trips_through_json(self, planned):
        _, _, plan = planned
        auditor, _ = recorded_run(plan)
        doc = auditor.as_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["aggregate"]["flagged_stages"] == sum(
            len(r.flagged_stages) for r in auditor.records
        )


class TestCriticalPath:
    def test_path_ends_at_finish_and_is_causal(self, planned):
        _, _, plan = planned
        report = PlanExecutor(plan.topology).execute(plan, 1024)
        hops = critical_path(report)
        assert hops
        assert hops[-1].finish_time == pytest.approx(report.total_time)
        for earlier, later in zip(hops, hops[1:]):
            a, b = earlier.flow.tag, later.flow.tag
            assert a.stage < b.stage
            assert earlier.finish_time <= later.finish_time
            # consecutive hops share an endpoint (the dependency chain)
            assert {a.src, a.dst} & {b.src, b.dst}

    def test_deterministic(self, planned):
        _, _, plan = planned

        def hops():
            report = PlanExecutor(plan.topology).execute(plan, 1024)
            return [
                (h.flow.tag.stage, h.flow.tag.src, h.flow.tag.dst,
                 h.start_time, h.finish_time)
                for h in critical_path(report)
            ]

        assert hops() == hops()


class TestRunProfile:
    def test_attribution_and_rendering(self, planned):
        _, _, plan = planned
        auditor, recorder = recorded_run(plan)
        profile = RunProfile.from_recorder(recorder, audit=auditor,
                                           meta={"source": "test"})
        assert len(profile.collectives) == 2
        assert profile.total_seconds > 0
        assert 0 < profile.critical_seconds() <= profile.total_seconds
        hot = profile.hottest_connections(3)
        assert hot == sorted(hot, key=lambda c: (-c.busy_seconds, c.name))
        for conn in hot:
            assert 0 <= conn.utilization <= 1.0
            assert conn.contention >= 1.0
        text = render_profile(profile)
        assert "critical path" in text and "cost-model audit" in text

    def test_document_round_trip_and_diff(self, planned, tmp_path):
        _, _, plan = planned
        auditor, recorder = recorded_run(plan)
        profile = RunProfile.from_recorder(recorder, audit=auditor)
        path = tmp_path / "prof.json"
        write_profile(profile, path)
        loaded = load_profile(path)
        assert loaded == profile.as_dict()
        assert profile_json(loaded) == profile_json(profile)

        auditor2, recorder2 = recorded_run(plan, bpu=4096)
        other = RunProfile.from_recorder(recorder2, audit=auditor2)
        diff = diff_profiles(profile, other)
        assert diff["total_seconds"]["candidate"] > \
            diff["total_seconds"]["base"]
        assert "->" in render_diff(diff)

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError):
            load_profile(path)


class TestSessionProfile:
    def test_profile_requires_armed_recorder(self, planned):
        from repro.api import DGCLSession

        graph, _, _ = planned
        session = DGCLSession(dgx1())
        session.build_comm_info(graph, seed=0)
        with pytest.raises(RuntimeError, match="arm_telemetry"):
            session.profile()

    def test_profile_and_cache_annotation(self, planned, tmp_path):
        from repro.api import DGCLSession

        graph, _, _ = planned
        session = DGCLSession(dgx1(), plan_cache=tmp_path / "cache")
        session.build_comm_info(graph, seed=0)
        session.arm_telemetry()
        features = np.zeros((graph.num_vertices, 4), dtype=np.float32)
        blocks = session.dispatch_features(features)
        out = session.graph_allgather(blocks)
        session.scatter_gradients([np.zeros_like(b) for b in out])

        profile = session.profile()
        assert len(profile.collectives) == 2
        assert profile.meta["source"] == "session"
        assert profile.audit is not None

        # Annotation updated the entry's meta without a second store.
        stats = session.plan_cache.stats.as_dict()
        assert stats["stores"] == 1
        assert stats["annotations"] == 2
        entry = json.loads(
            session.plan_cache.path_for(session._cache_key).read_text()
        )
        assert entry["meta"]["audited_runs"] == 2
        assert isinstance(entry["meta"]["observed_error"], float)


class TestPlanCacheAnnotate:
    def test_missing_entry_is_silent(self, planned, tmp_path):
        from repro.autotune.cache import PlanCache
        from repro.autotune.fingerprint import cache_key

        graph, rel, _ = planned
        cache = PlanCache(tmp_path)
        key = cache_key(graph, rel.assignment, dgx1(), {"strategy": "spst"})
        assert cache.annotate(key, observed_error=0.1) is None
        assert cache.stats.annotations == 0

    def test_annotate_merges_meta(self, planned, tmp_path):
        from repro.autotune.cache import PlanCache
        from repro.autotune.fingerprint import cache_key

        graph, rel, plan = planned
        cache = PlanCache(tmp_path)
        key = cache_key(graph, rel.assignment, dgx1(), {"strategy": "spst"})
        cache.put(key, plan, meta={"strategy": "spst"})
        path = cache.annotate(key, observed_error=0.05, audited_runs=3)
        doc = json.loads(path.read_text())
        assert doc["meta"] == {
            "strategy": "spst", "observed_error": 0.05, "audited_runs": 3,
        }
        assert cache.stats.stores == 1
        assert cache.stats.annotations == 1
        # The annotated entry still loads as a plan.
        assert cache.get(key, dgx1()) is not None


class TestCli:
    def test_profile_verb_renders_and_saves(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        assert main(["profile", "--dataset", "web-google", "--gpus", "8",
                     "--output", str(out)]) == 0
        text = capsys.readouterr().out
        assert "critical path" in text and "cost-model audit" in text
        doc = json.loads(out.read_text())
        assert doc["kind"] == "dgcl-profile"

    def test_report_verb_single_and_diff(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        main(["profile", "--dataset", "web-google", "--gpus", "8",
              "--output", str(base)])
        main(["profile", "--dataset", "wiki-talk", "--gpus", "8",
              "--output", str(cand)])
        capsys.readouterr()
        assert main(["report", str(base)]) == 0
        assert "stage attribution" in capsys.readouterr().out
        assert main(["report", str(base), "--against", str(cand)]) == 0
        assert "->" in capsys.readouterr().out

    def test_report_rejects_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 2


class TestCompareGate:
    def _obs_doc(self):
        return {
            "benchmark": "obs",
            "format": 1,
            "payload": {
                "workload": {"datasets": ["web-google"], "num_gpus": 8},
                "total_simulated_seconds": 1e-4,
                "critical_path_seconds": 4e-5,
                "audit": {"mean_abs_stage_error": 0.05,
                          "fig10_match": True},
                "profile_deterministic": True,
            },
        }

    def _dirs(self, tmp_path):
        base_dir = tmp_path / "base"
        cand_dir = tmp_path / "cand"
        base_dir.mkdir()
        cand_dir.mkdir()
        return base_dir, cand_dir

    def test_identical_artifacts_pass(self, tmp_path):
        from benchmarks.compare import main as compare_main

        base_dir, cand_dir = self._dirs(tmp_path)
        doc = self._obs_doc()
        (base_dir / "BENCH_obs.json").write_text(json.dumps(doc))
        (cand_dir / "BENCH_obs.json").write_text(json.dumps(doc))
        assert compare_main(["--baseline", str(base_dir),
                             "--candidate", str(cand_dir),
                             "--skip-wall"]) == 0

    def test_injected_ten_percent_regression_fails(self, tmp_path, capsys):
        from benchmarks.compare import main as compare_main

        base_dir, cand_dir = self._dirs(tmp_path)
        doc = self._obs_doc()
        (base_dir / "BENCH_obs.json").write_text(json.dumps(doc))
        doc["payload"]["total_simulated_seconds"] *= 1.10
        (cand_dir / "BENCH_obs.json").write_text(json.dumps(doc))
        assert compare_main(["--baseline", str(base_dir),
                             "--candidate", str(cand_dir),
                             "--skip-wall"]) == 1
        assert "REGRESSION total_simulated_seconds" in capsys.readouterr().out

    def test_workload_mismatch_skips(self, tmp_path):
        from benchmarks.compare import compare_payload

        base = self._obs_doc()["payload"]
        cand = json.loads(json.dumps(base))
        cand["workload"]["num_gpus"] = 4
        cand["total_simulated_seconds"] *= 5  # would fail if gated
        verdict = compare_payload("obs", base, cand)
        assert verdict["status"] == "skipped"
        assert "mismatch" in verdict["reason"]

    def test_missing_candidate_artifact_fails(self, tmp_path):
        from benchmarks.compare import compare_dirs

        base_dir, cand_dir = self._dirs(tmp_path)
        (base_dir / "BENCH_obs.json").write_text(json.dumps(self._obs_doc()))
        verdict = compare_dirs(base_dir, cand_dir)
        assert not verdict["passed"]

    def test_wall_metrics_skippable(self, tmp_path):
        from benchmarks.compare import compare_payload

        payload = {
            "workload": {"smoke": False},
            "composite_speedup": 5.0,
            "planner_speedup": 3.0,
        }
        slower = dict(payload, composite_speedup=1.0, planner_speedup=1.0)
        gated = compare_payload("fastpath", payload, slower, skip_wall=False)
        assert gated["status"] == "fail"
        skipped = compare_payload("fastpath", payload, slower, skip_wall=True)
        assert skipped["status"] == "pass"
