"""Tests for timeline extraction and the ASCII Gantt renderer."""

import pytest

from repro.core import CommRelation, SPSTPlanner
from repro.graph.generators import rmat
from repro.partition import partition
from repro.simulator.executor import ExecutionReport, PlanExecutor
from repro.simulator.timeline import render_gantt, timeline_events
from repro.topology import dgx1


@pytest.fixture(scope="module")
def report():
    graph = rmat(150, 900, seed=13)
    r = partition(graph, 8, seed=0)
    rel = CommRelation(graph, r.assignment, 8)
    plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
    return PlanExecutor(dgx1()).execute(plan, 1024), plan


class TestTimelineEvents:
    def test_one_event_per_transfer(self, report):
        rep, plan = report
        events = timeline_events(rep)
        assert len(events) == len(plan.tuples())

    def test_sorted_by_start(self, report):
        rep, _ = report
        events = timeline_events(rep)
        starts = [e.start for e in events]
        assert starts == sorted(starts)

    def test_durations_positive_and_within_total(self, report):
        rep, _ = report
        for e in timeline_events(rep):
            assert e.duration > 0
            assert e.finish <= rep.total_time + 1e-12

    def test_labels_carry_endpoints_and_kind(self, report):
        rep, _ = report
        labels = {e.label for e in timeline_events(rep)}
        assert any("->" in label for label in labels)
        assert any("NV" in label for label in labels)

    def test_stage_ordering_consistent(self, report):
        """A stage-k event never starts before every stage-(k-1) event
        involving its devices has finished (spot check via min/max)."""
        rep, _ = report
        events = timeline_events(rep)
        by_stage = {}
        for e in events:
            by_stage.setdefault(e.stage, []).append(e)
        stages = sorted(s for s in by_stage if s is not None)
        for a, b in zip(stages, stages[1:]):
            assert min(e.start for e in by_stage[b]) >= 0


class TestGantt:
    def test_renders_every_transfer(self, report):
        rep, plan = report
        art = render_gantt(rep, max_rows=1000)
        assert art.count("|") == 2 * len(plan.tuples())
        assert "total:" in art

    def test_truncation(self, report):
        rep, plan = report
        art = render_gantt(rep, max_rows=3)
        assert "more transfers" in art

    def test_empty_report(self):
        assert render_gantt(ExecutionReport(total_time=0.0)) == "(no transfers)"

    def test_bars_reflect_relative_duration(self, report):
        rep, _ = report
        events = timeline_events(rep)
        longest = max(events, key=lambda e: e.duration)
        art = render_gantt(rep, max_rows=1000, width=40)
        # the longest transfer paints one of the longest bars
        bar_lengths = {
            line.split("|")[1].count("=")
            for line in art.splitlines() if "|" in line
        }
        longest_line = [
            line for line in art.splitlines() if line.startswith(longest.label)
        ]
        assert longest_line
        assert longest_line[0].split("|")[1].count("=") == max(bar_lengths)
