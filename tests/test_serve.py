"""Unit tests for the serving control plane (``repro.serve``).

Covers the admission primitives (token bucket, bounded queue, WFQ),
the coalescing batcher, the arrival processes, the degradation ladder
and replica store, and the healthy-scenario end-to-end behaviour:
full SLO attainment, typed-only outcomes and bit-identical reruns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeSpecError
from repro.serve import (
    ArrivalSpec,
    BoundedQueue,
    Batch,
    CoalescingBatcher,
    DegradationLadder,
    FairPicker,
    InferenceRequest,
    LEVELS,
    OUTCOMES,
    ReplicaStore,
    SeedSampler,
    ServeSession,
    TokenBucket,
    arrival_times,
    build_scenario,
)


def _request(rid: int, tenant: str = "t", arrival: float = 0.0,
             deadline: float = 1.0) -> InferenceRequest:
    return InferenceRequest(
        rid=rid, tenant=tenant, arrival=arrival, deadline=deadline,
        vertices=np.array([rid], dtype=np.int64),
    )


class TestTokenBucket:
    def test_starts_full_and_refills(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst spent
        # 0.1s at 10 tokens/s refills one token.
        assert bucket.try_take(0.1)
        assert not bucket.try_take(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0)
        assert bucket.available(10.0) == 3.0

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=2.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestBoundedQueue:
    def test_push_pop_fifo_and_capacity(self):
        q = BoundedQueue(2)
        assert q.push(_request(0))
        assert q.push(_request(1))
        assert q.full
        assert not q.push(_request(2))  # typed queue-full shed
        assert q.pop().rid == 0
        assert q.peek().rid == 1

    def test_expire_removes_only_past_deadline(self):
        q = BoundedQueue(4)
        q.push(_request(0, deadline=0.5))
        q.push(_request(1, deadline=2.0))
        expired = q.expire(1.0)
        assert [r.rid for r in expired] == [0]
        assert len(q) == 1 and q.peek().rid == 1


class TestFairPicker:
    def test_picks_smallest_virtual_time(self):
        picker = FairPicker({"a": 1.0, "b": 1.0})
        picker.backlog("a")
        picker.backlog("b")
        picker.charge("a", 4.0)
        assert picker.pick(["a", "b"]) == "b"

    def test_weights_scale_charges(self):
        picker = FairPicker({"heavy": 4.0, "light": 1.0})
        picker.backlog("heavy")
        picker.backlog("light")
        picker.charge("heavy", 4.0)  # vtime 1.0
        picker.charge("light", 2.0)  # vtime 2.0
        assert picker.pick(["heavy", "light"]) == "heavy"

    def test_idle_tenant_is_not_punished(self):
        picker = FairPicker({"a": 1.0, "b": 1.0})
        picker.backlog("a")
        picker.charge("a", 10.0)
        picker.drain("a")
        picker.backlog("b")
        picker.charge("b", 6.0)
        # a re-activates: its vtime floors to the active minimum, it
        # does not owe the work it never had queued.
        picker.backlog("a")
        assert picker.vtime["a"] >= 6.0

    def test_deterministic_tie_break_by_name(self):
        picker = FairPicker({"b": 1.0, "a": 1.0})
        picker.backlog("a")
        picker.backlog("b")
        assert picker.pick(["b", "a"]) == "a"

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            FairPicker({"a": 0.0})


class TestCoalescingBatcher:
    def test_full_batch_closes_immediately(self):
        batcher = CoalescingBatcher(max_batch=2, window=1.0)
        q = BoundedQueue(4)
        q.push(_request(0))
        q.push(_request(1))
        assert batcher.close_time(q, now=5.0, est_service=0.1,
                                  slo=10.0, scale=1.0) == 5.0

    def test_window_waits_within_headroom(self):
        batcher = CoalescingBatcher(max_batch=8, window=0.5)
        q = BoundedQueue(4)
        q.push(_request(0, arrival=0.0))
        close = batcher.close_time(q, now=0.0, est_service=1.0,
                                   slo=10.0, scale=1.0)
        assert close == 0.5  # full window fits inside the headroom

    def test_headroom_clamps_the_window(self):
        batcher = CoalescingBatcher(max_batch=8, window=5.0)
        q = BoundedQueue(4)
        q.push(_request(0, arrival=0.0))
        close = batcher.close_time(q, now=0.0, est_service=1.0,
                                   slo=2.0, scale=1.0)
        assert close == pytest.approx(1.0)  # slo - est_service

    def test_ladder_scale_zero_disables_coalescing(self):
        batcher = CoalescingBatcher(max_batch=8, window=5.0)
        q = BoundedQueue(4)
        q.push(_request(0))
        assert batcher.close_time(q, now=3.0, est_service=0.1,
                                  slo=10.0, scale=0.0) == 3.0

    def test_form_pops_up_to_max_batch(self):
        batcher = CoalescingBatcher(max_batch=2, window=0.0)
        q = BoundedQueue(4)
        for rid in range(3):
            q.push(_request(rid))
        batch = batcher.form(q, now=0.0)
        assert isinstance(batch, Batch)
        assert [r.rid for r in batch.requests] == [0, 1]
        assert batch.size == 2 and len(q) == 1


class TestArrivals:
    def test_same_seed_same_stream(self):
        spec = ArrivalSpec(kind="bursty", rate=2e6, burst_factor=3.0)
        a = arrival_times(spec, 1e-4, np.random.default_rng(7))
        b = arrival_times(spec, 1e-4, np.random.default_rng(7))
        assert a == b and a == sorted(a)

    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
    def test_mean_rate_is_roughly_respected(self, kind):
        spec = ArrivalSpec(kind=kind, rate=1e6)
        times = arrival_times(spec, 1e-3, np.random.default_rng(0))
        # ~1000 expected; allow generous slack for the bursty phases.
        assert 500 < len(times) < 2000

    def test_spec_validation(self):
        with pytest.raises(ServeSpecError):
            ArrivalSpec(kind="thundering-herd")
        with pytest.raises(ServeSpecError):
            ArrivalSpec(rate=0.0)
        with pytest.raises(ServeSpecError):
            ArrivalSpec(burst_factor=0.5)
        with pytest.raises(ServeSpecError):
            ArrivalSpec(amplitude=1.5)

    def test_seed_sampler_sorted_unique(self):
        sampler = SeedSampler(100, seeds_per_request=5, seed=3)
        picks = sampler.sample(np.random.default_rng(0))
        assert picks.dtype == np.int64
        assert list(picks) == sorted(set(picks.tolist()))

    def test_hot_fraction_one_stays_in_hot_set(self):
        sampler = SeedSampler(100, seeds_per_request=3,
                              hot_fraction=1.0, seed=3)
        hot = set(sampler.hot.tolist())
        rng = np.random.default_rng(1)
        for _ in range(20):
            assert set(sampler.sample(rng).tolist()) <= hot


class TestDegradationLadder:
    def test_engages_and_recovers_with_hysteresis(self):
        ladder = DegradationLadder(engage_after=2, recover_after=2)
        assert ladder.feedback(True, 0.0, 0) is None  # streak 1
        t = ladder.feedback(True, 1.0, 1)             # streak 2: engage
        assert t is not None and t.direction == "engage"
        assert LEVELS[ladder.level] == "shrink"
        assert ladder.window_scale == 0.0
        assert ladder.feedback(False, 2.0, 2) is None
        t = ladder.feedback(False, 3.0, 3)
        assert t is not None and t.direction == "recover"
        assert LEVELS[ladder.level] == "normal"
        assert ladder.window_scale == 1.0

    def test_rung_properties(self):
        ladder = DegradationLadder(engage_after=1, recover_after=99)
        for _ in range(3):
            ladder.feedback(True, 0.0, 0)
        assert LEVELS[ladder.level] == "shed"
        assert ladder.stale_serve and ladder.shed_tenant

    def test_replica_store_ttl_split(self):
        store = ReplicaStore(ttl=1.0)
        store.record(np.array([1, 2], dtype=np.int64), now=0.0)
        fresh, stale = store.split(np.array([1, 2, 3], dtype=np.int64),
                                   now=0.5)
        assert list(stale) == [1, 2] and list(fresh) == [3]
        fresh, stale = store.split(np.array([1, 2], dtype=np.int64),
                                   now=5.0)
        assert list(fresh) == [1, 2] and list(stale) == []
        store.clear()
        assert not store.covers(np.array([1], dtype=np.int64), now=0.0)


class TestHealthyScenario:
    def test_poisson_attains_slo_with_typed_outcomes(self):
        report = build_scenario("poisson", horizon_scale=0.5).run(seed=0)
        assert report.unaccounted == 0
        assert report.completed > 0
        counts = report.outcome_counts()
        assert set(counts) == set(OUTCOMES)
        assert report.final_level == "normal" and not report.ladder
        for stats in report.tenants.values():
            assert stats["slo_attainment"] == 1.0

    def test_run_twice_is_bit_identical(self):
        session = build_scenario("bursty", horizon_scale=0.4)
        a = session.run(seed=3)
        b = session.run(seed=3)
        assert a.signature() == b.signature()
        c = session.run(seed=4)
        assert c.signature() != a.signature()

    def test_bursty_sheds_with_typed_rejections_only(self):
        report = build_scenario("bursty", horizon_scale=0.5).run(seed=0)
        assert report.shed > 0
        assert report.unaccounted == 0

    def test_hotspot_hits_the_batch_plan_cache(self):
        # Needs the full horizon: hot-set batch repeats are rare early.
        report = build_scenario("hotspot").run(seed=0)
        assert report.batch_cache["hits"] > 0
        assert report.batch_cache["plans"] <= (
            report.batch_cache["misses"]
        )

    def test_plan_cache_reuse_across_sessions(self, tmp_path):
        from repro.autotune.cache import PlanCache

        cache = PlanCache(tmp_path / "plans")
        first = build_scenario("poisson", horizon_scale=0.2,
                               plan_cache=cache)
        assert first.plan_cache_source == "planned"
        second = build_scenario("poisson", horizon_scale=0.2,
                                plan_cache=cache)
        assert second.plan_cache_source == "cache"
        # The cached plan serves identically to the freshly planned
        # one — only the provenance field may differ.
        a = first.run(seed=1).as_dict()
        b = second.run(seed=1).as_dict()
        assert a.pop("plan_cache_source") == "planned"
        assert b.pop("plan_cache_source") == "cache"
        assert a == b

    def test_session_rejects_empty_and_duplicate_tenants(self):
        from repro.graph.generators import rmat
        from repro.serve import TenantSpec
        from repro.topology import topology_for_gpu_count

        graph = rmat(60, 300, seed=0)
        topo = topology_for_gpu_count(4)
        with pytest.raises(ServeSpecError):
            ServeSession(graph, topo, [])
        dup = [TenantSpec(name="a", slo=1e-5),
               TenantSpec(name="a", slo=2e-5)]
        with pytest.raises(ServeSpecError):
            ServeSession(graph, topo, dup)
