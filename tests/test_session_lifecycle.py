"""Session-first API: lifecycle, shutdown guarantees, error hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

import repro.api as dgcl
import repro.errors
from repro.api import DGCLSession, PlanReport
from repro.graph.generators import rmat
from repro.topology import dgx1


@pytest.fixture(autouse=True)
def fresh_global_session():
    dgcl.shutdown()
    yield
    dgcl.shutdown()


@pytest.fixture()
def graph():
    return rmat(120, 700, seed=5)


class TestContextManager:
    def test_factory_returns_open_session(self):
        s = dgcl.session(dgx1(4))
        assert not s.closed
        s.shutdown()
        assert s.closed

    def test_with_block_shuts_down(self, graph):
        with dgcl.session(dgx1(4)) as s:
            s.build_comm_info(graph)
            assert not s.closed
        assert s.closed
        assert s.plan is None and s.relation is None

    def test_cleanup_on_exception(self, graph):
        with pytest.raises(KeyError, match="boom"):
            with dgcl.session(dgx1(4)) as s:
                s.build_comm_info(graph)
                raise KeyError("boom")
        assert s.closed  # __exit__ ran, exception propagated

    def test_double_shutdown_is_idempotent(self):
        s = dgcl.session(dgx1(4))
        s.shutdown()
        s.shutdown()  # no error
        assert s.closed

    def test_reentering_closed_session_rejected(self):
        s = dgcl.session(dgx1(4))
        s.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            with s:
                pass

    def test_calls_after_shutdown_raise(self, graph):
        s = dgcl.session(dgx1(4))
        s.build_comm_info(graph)
        feats = np.zeros((graph.num_vertices, 3))
        blocks = s.dispatch_features(feats)
        s.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            s.build_comm_info(graph)
        with pytest.raises(RuntimeError, match="shut down"):
            s.dispatch_features(feats)
        with pytest.raises(RuntimeError, match="shut down"):
            s.graph_allgather(blocks)
        with pytest.raises(RuntimeError, match="shut down"):
            s.tune(graph)

    def test_factory_does_not_register_global(self, graph):
        with dgcl.session(dgx1(4)) as s:
            s.build_comm_info(graph)
            with pytest.raises(RuntimeError, match="init"):
                dgcl.build_comm_info(graph)


class TestGlobalShims:
    def test_init_registers_and_shutdown_clears(self, graph):
        dgcl.init(dgx1(4))
        report = dgcl.build_comm_info(graph)
        assert isinstance(report, PlanReport)
        assert dgcl.communication_plan() is report.plan
        dgcl.shutdown()
        with pytest.raises(RuntimeError, match="init"):
            dgcl.build_comm_info(graph)

    def test_module_shutdown_closes_the_session(self, graph):
        dgcl.init(dgx1(4))
        session = dgcl._session()
        dgcl.shutdown()
        assert session.closed

    def test_session_shutdown_deregisters_global(self, graph):
        dgcl.init(dgx1(4))
        dgcl._session().shutdown()
        with pytest.raises(RuntimeError, match="init"):
            dgcl.build_comm_info(graph)

    def test_init_passes_engine_and_fidelity(self, graph):
        dgcl.init(dgx1(4), engine="scalar", fidelity="cost")
        report = dgcl.build_comm_info(graph)
        assert report.engine == "scalar"
        assert report.fidelity == "cost"

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            DGCLSession(dgx1(4), engine="gpu")
        with pytest.raises(ValueError, match="fidelity"):
            DGCLSession(dgx1(4), fidelity="exact")


class TestPlanReport:
    def test_report_fields(self, graph):
        with dgcl.session(dgx1(4)) as s:
            report = s.build_comm_info(graph)
            assert report.plan_source == "planned"
            assert report.engine == "vectorized"
            assert report.fidelity == "event"
            assert report.num_stages == len(report.stage_costs) >= 1
            assert report.total_cost == pytest.approx(
                sum(report.stage_costs))
            assert report.tune_report is None
            d = report.as_dict()
            assert d["plan_source"] == "planned"
            assert d["num_routes"] == len(report.plan.routes)

    def test_report_is_frozen(self, graph):
        with dgcl.session(dgx1(4)) as s:
            report = s.build_comm_info(graph)
            with pytest.raises(Exception):
                report.engine = "scalar"

    def test_positional_options_rejected(self, graph):
        with dgcl.session(dgx1(4)) as s:
            with pytest.raises(TypeError):
                s.build_comm_info(graph, None)  # assignment is kw-only


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in repro.errors.__all__:
            cls = getattr(repro.errors, name)
            assert issubclass(cls, repro.errors.ReproError)

    def test_stdlib_bases_preserved(self):
        assert issubclass(repro.errors.FaultSpecError, ValueError)
        assert issubclass(repro.errors.PlanCacheError, ValueError)
        assert issubclass(repro.errors.DeviceLostError, RuntimeError)
        assert issubclass(repro.errors.UnrecoverableFaultError, RuntimeError)
        assert issubclass(repro.errors.SimulatedOOMError, RuntimeError)
        assert issubclass(repro.errors.OracleViolation, AssertionError)

    def test_historical_homes_reexport(self):
        from repro.autotune.cache import PlanCacheError
        from repro.chaos.oracles import OracleViolation
        from repro.faults.policy import DeviceLostError, UnrecoverableFaultError
        from repro.faults.spec import FaultSpecError
        from repro.simulator.devices import SimulatedOOMError

        assert PlanCacheError is repro.errors.PlanCacheError
        assert OracleViolation is repro.errors.OracleViolation
        assert UnrecoverableFaultError is repro.errors.UnrecoverableFaultError
        assert FaultSpecError is repro.errors.FaultSpecError
        assert DeviceLostError is repro.errors.DeviceLostError
        assert SimulatedOOMError is repro.errors.SimulatedOOMError

    def test_one_clause_catches_the_family(self):
        with pytest.raises(repro.errors.ReproError):
            raise repro.errors.FaultSpecError("bad spec")
        with pytest.raises(repro.errors.ReproError):
            raise repro.errors.SimulatedOOMError(0, 100, 64, 32)
        with pytest.raises(repro.errors.ReproError):
            raise repro.errors.UnrecoverableFaultError("nv:0-1", 3)
