"""Property-based tests for the newer subsystems: live network,
collectives, serialization, protocol runtime and method selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.collectives import ring_allreduce
from repro.comm.methods import MethodTable, select_method
from repro.core import CommRelation, SPSTPlanner
from repro.core.serialize import load_plan, save_plan
from repro.graph.csr import Graph
from repro.runtime import LiveNetwork, ProtocolRunner, Simulator
from repro.runtime.events import Timeout, WaitEvent
from repro.topology import dgx1, dual_dgx1, fully_connected, ring
from repro.topology.links import LinkKind, PhysicalConnection


class TestLiveNetworkProperties:
    @given(
        st.lists(st.tuples(st.floats(1e3, 1e8), st.floats(0.0, 1.0)),
                 min_size=1, max_size=10)
    )
    @settings(max_examples=25, deadline=None)
    def test_shared_wire_conserves_bytes(self, arrivals):
        """Total completion time on one wire >= total bytes / bandwidth,
        and every transfer finishes."""
        sim = Simulator()
        conn = PhysicalConnection("w", LinkKind.NV1, 10.0)
        net = LiveNetwork(sim, alpha=0.0)
        handles = []

        def spawner():
            last = 0.0
            for size, gap in sorted(arrivals, key=lambda a: a[1]):
                wait = gap - last
                if wait > 0:
                    yield Timeout(wait)
                    last = gap
                handles.append(net.transfer((conn,), size))
            for h in handles:
                yield WaitEvent(h.done)

        sim.spawn(spawner(), "spawner")
        total = sim.run()
        bytes_total = sum(size for size, _ in arrivals)
        assert total >= bytes_total / 10e9 - 1e-9
        assert all(h.finish_time is not None for h in handles)

    @given(st.integers(1, 6), st.floats(1e4, 1e8))
    @settings(max_examples=20, deadline=None)
    def test_n_equal_flows_finish_together(self, n, size):
        sim = Simulator()
        conn = PhysicalConnection("w", LinkKind.NV1, 10.0)
        net = LiveNetwork(sim, alpha=0.0)
        handles = [net.transfer((conn,), size) for _ in range(n)]

        def obs():
            for h in handles:
                yield WaitEvent(h.done)

        sim.spawn(obs(), "obs")
        sim.run()
        finishes = {round(h.finish_time, 15) for h in handles}
        assert len(finishes) == 1
        assert handles[0].finish_time == pytest.approx(n * size / 10e9)


class TestCollectiveProperties:
    @given(st.integers(2, 8), st.integers(1, 40), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_allreduce_equals_sum(self, n, length, seed):
        topo = ring(n)
        rng = np.random.default_rng(seed)
        blocks = [rng.standard_normal(length).astype(np.float64)
                  for _ in range(n)]
        out = ring_allreduce(topo, blocks)
        expected = np.sum(blocks, axis=0)
        for block in out:
            assert np.allclose(block, expected, atol=1e-9)


@st.composite
def relation_on_dgx(draw):
    n = draw(st.integers(8, 30))
    m = draw(st.integers(1, 80))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    g = Graph(np.asarray(src), np.asarray(dst), n, drop_self_loops=True)
    seed = draw(st.integers(0, 10))
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, 8, n)
    return CommRelation(g, assignment, 8), seed


class TestPlanPipelineProperties:
    @given(relation_on_dgx())
    @settings(max_examples=12, deadline=None)
    def test_serialization_roundtrip(self, rel_seed):
        import tempfile
        from pathlib import Path

        rel, seed = rel_seed
        topo = dgx1()
        plan = SPSTPlanner(topo, seed=seed).plan(rel)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.npz"
            save_plan(plan, path)
            loaded = load_plan(path, topo)
        loaded.validate(rel)
        assert loaded.estimated_cost(64) == pytest.approx(
            plan.estimated_cost(64)
        )

    @given(relation_on_dgx())
    @settings(max_examples=8, deadline=None)
    def test_protocol_delivers_required_rows(self, rel_seed):
        rel, seed = rel_seed
        plan = SPSTPlanner(dgx1(), seed=seed).plan(rel)
        n = rel.graph.num_vertices
        rng = np.random.default_rng(seed)
        h = rng.standard_normal((n, 2)).astype(np.float32)
        blocks = [h[rel.local_vertices[d]] for d in range(8)]
        gathered, report = ProtocolRunner(rel, plan).run_data(blocks)
        for d in range(8):
            layout = np.concatenate(
                [rel.local_vertices[d], rel.remote_vertices[d]]
            )
            assert np.array_equal(gathered[d], h[layout])

    @given(relation_on_dgx())
    @settings(max_examples=10, deadline=None)
    def test_backward_tuples_are_an_involution(self, rel_seed):
        """Reversing twice restores (src, dst, stage) exactly."""
        rel, seed = rel_seed
        topo = dgx1()
        plan = SPSTPlanner(topo, seed=seed).plan(rel)
        fwd = plan.tuples()
        if not fwd:
            return
        total = plan.num_stages
        bwd = plan.backward_tuples()
        twice = sorted(
            (t.dst, t.src, total - 1 - t.stage, tuple(t.vertices))
            for t in bwd
        )
        once = sorted(
            (t.src, t.dst, t.stage, tuple(t.vertices)) for t in fwd
        )
        assert twice == once


class TestMethodSelectionProperties:
    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_selection_is_symmetric_in_class(self, a, b):
        """The method depends only on the pair's placement class, so it
        is symmetric under swapping endpoints."""
        if a == b:
            return
        topo = dual_dgx1()
        assert select_method(topo, a, b) == select_method(topo, b, a)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_table_profiles_have_unit_efficiency_on_auto(self, a, b):
        if a == b:
            return
        table = MethodTable(dual_dgx1())
        assert table.profile(a, b).efficiency == 1.0
