"""Tests for plan serialization and the command-line interface."""

import numpy as np
import pytest

from repro.core import CommRelation, SPSTPlanner
from repro.core.serialize import load_plan, save_plan
from repro.graph.generators import rmat
from repro.partition import partition
from repro.topology import dgx1, pcie_only
from repro.__main__ import main


@pytest.fixture(scope="module")
def planned():
    graph = rmat(200, 1400, seed=12)
    r = partition(graph, 8, seed=0)
    rel = CommRelation(graph, r.assignment, 8)
    topo = dgx1()
    plan = SPSTPlanner(topo, seed=0).plan(rel)
    return rel, topo, plan


class TestSerialization:
    def test_roundtrip_identical(self, tmp_path, planned):
        rel, topo, plan = planned
        path = tmp_path / "plan.npz"
        save_plan(plan, path)
        loaded = load_plan(path, topo)
        assert loaded.name == plan.name
        assert len(loaded.routes) == len(plan.routes)
        a = [(t.src, t.dst, t.stage, t.vertices.tolist()) for t in plan.tuples()]
        b = [(t.src, t.dst, t.stage, t.vertices.tolist()) for t in loaded.tuples()]
        assert a == b

    def test_loaded_plan_validates_and_costs_the_same(self, tmp_path, planned):
        rel, topo, plan = planned
        path = tmp_path / "plan.npz"
        save_plan(plan, path)
        loaded = load_plan(path, topo)
        loaded.validate(rel)
        assert loaded.estimated_cost(1024) == pytest.approx(
            plan.estimated_cost(1024)
        )

    def test_loaded_plan_executes(self, tmp_path, planned):
        from repro.comm.allgather import CompiledAllgather

        rel, topo, plan = planned
        path = tmp_path / "p.npz"
        save_plan(plan, path)
        loaded = load_plan(path, topo)
        rng = np.random.default_rng(0)
        h = rng.standard_normal((rel.graph.num_vertices, 3)).astype(np.float32)
        blocks = [h[rel.local_vertices[d]] for d in range(8)]
        out_a = CompiledAllgather(rel, plan).forward(blocks)
        out_b = CompiledAllgather(rel, loaded).forward(blocks)
        for x, y in zip(out_a, out_b):
            assert np.array_equal(x, y)

    def test_wrong_topology_rejected(self, tmp_path, planned):
        rel, topo, plan = planned
        path = tmp_path / "p.npz"
        save_plan(plan, path)
        with pytest.raises(ValueError, match="devices"):
            load_plan(path, dgx1(4))
        with pytest.raises(ValueError, match="link count"):
            load_plan(path, pcie_only(8))

    def test_empty_plan_roundtrip(self, tmp_path):
        from repro.core.plan import CommPlan

        topo = dgx1(4)
        plan = CommPlan(topo, [], name="empty")
        path = tmp_path / "e.npz"
        save_plan(plan, path)
        loaded = load_plan(path, topo)
        assert loaded.routes == ()


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "reddit" in out and "dgx1" in out

    def test_plan_and_save(self, tmp_path, capsys):
        out_path = tmp_path / "cli_plan.npz"
        code = main([
            "plan", "--dataset", "web-google", "--gpus", "4",
            "--output", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "estimated allgather cost" in out

    def test_evaluate_single_scheme(self, capsys):
        code = main([
            "evaluate", "--dataset", "web-google", "--gpus", "4",
            "--scheme", "dgcl",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dgcl" in out and "ok" in out

    @pytest.mark.slow
    def test_train_matches_reference(self, capsys):
        code = main([
            "train", "--dataset", "web-google", "--gpus", "4",
            "--epochs", "2",
        ])
        assert code == 0
        assert "matches single-device reference: True" in capsys.readouterr().out
