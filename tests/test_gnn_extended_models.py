"""Tests for the extended model zoo: GraphSAGE and GAT.

Gradient-checked like the core trio, plus the decisive integration
check: distributed training through a DGCL plan matches single-device
training for both models.
"""

import numpy as np
import pytest

from repro.core import CommRelation, SPSTPlanner
from repro.gnn import SingleDeviceTrainer, build_gat, build_sage
from repro.gnn.distributed import DistributedTrainer
from repro.gnn.layers import GATLayer, SAGELayer
from repro.graph.datasets import synthetic_features, synthetic_labels
from repro.graph.generators import rmat
from repro.partition import partition
from repro.topology import dgx1

from tests.test_gnn_functional import numerical_layer_grad_check


class TestGradients:
    def test_sage_gradients(self):
        numerical_layer_grad_check(SAGELayer)

    def test_sage_no_activation(self):
        numerical_layer_grad_check(SAGELayer, activation=False)

    def test_gat_gradients(self):
        numerical_layer_grad_check(GATLayer)

    def test_gat_no_activation(self):
        numerical_layer_grad_check(GATLayer, activation=False)


class TestForwardSemantics:
    def test_sage_concat_width(self):
        layer = SAGELayer(6, 4)
        assert layer.params["W"].shape == (12, 4)

    def test_gat_attention_normalised(self):
        """Attention coefficients over each vertex's in-edges sum to 1."""
        from repro.gnn.layers import GraphContext

        g = rmat(40, 200, seed=1)
        ctx = GraphContext.from_graph(g)
        layer = GATLayer(5, 3, seed=0)
        rng = np.random.default_rng(0)
        h = rng.standard_normal((40, 5)).astype(np.float64)
        _, cache = layer.forward(ctx, h)
        alpha = cache[5]
        v = np.repeat(np.arange(ctx.num_dst), np.diff(ctx.in_indptr))
        sums = np.zeros(ctx.num_dst)
        np.add.at(sums, v, alpha)
        deg = ctx.in_degrees()
        assert np.allclose(sums[deg > 0], 1.0, atol=1e-9)

    def test_gat_isolated_vertex_zero_output(self):
        from repro.gnn.layers import GraphContext
        from repro.graph.csr import Graph

        g = Graph([0], [1], 3)
        ctx = GraphContext.from_graph(g)
        layer = GATLayer(4, 2, activation=False, seed=0)
        h = np.ones((3, 4), dtype=np.float64)
        out, _ = layer.forward(ctx, h)
        # vertex 2 has no in-edges: output is just the bias
        assert np.allclose(out[2], layer.params["b"])


class TestDistributedEquivalence:
    @pytest.fixture(scope="class")
    def task(self):
        g = rmat(200, 1300, seed=9)
        feats = synthetic_features(g, 20, seed=4)
        labels = synthetic_labels(g, 4, seed=4)
        r = partition(g, 8, seed=0)
        rel = CommRelation(g, r.assignment, 8)
        plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
        return g, feats, labels, rel, plan

    @pytest.mark.parametrize("builder", [build_sage, build_gat])
    def test_matches_reference(self, task, builder):
        g, feats, labels, rel, plan = task
        ref = SingleDeviceTrainer(g, builder(20, 10, 4, seed=5), feats,
                                  labels, lr=0.1)
        dist = DistributedTrainer(rel, plan, builder(20, 10, 4, seed=5),
                                  feats, labels, lr=0.1)
        for _ in range(2):
            a = ref.run_epoch()
            b = dist.run_epoch()
            assert a.loss == pytest.approx(b.loss, rel=1e-4)
            assert np.allclose(a.logits, b.logits, atol=1e-3)

    def test_training_reduces_loss(self, task):
        g, feats, labels, rel, plan = task
        dist = DistributedTrainer(rel, plan, build_sage(20, 10, 4, seed=6),
                                  feats, labels, lr=0.5)
        losses = dist.train(8)
        assert losses[-1] < losses[0]


class TestCostSignatures:
    def test_sage_doubles_gcn_dense(self):
        from repro.gnn import build_gcn

        sage = build_sage(64, 64, 8).layers[0]
        gcn = build_gcn(64, 64, 8).layers[0]
        assert sage.compute_cost(100, 120, 500).dense_flops == pytest.approx(
            2 * gcn.compute_cost(100, 120, 500).dense_flops
        )

    def test_gat_pays_per_edge_flops(self):
        layer = GATLayer(32, 32)
        sparse = layer.compute_cost(100, 120, 100)
        dense = layer.compute_cost(100, 120, 10_000)
        assert dense.dense_flops > sparse.dense_flops
