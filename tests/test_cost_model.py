"""Tests for the staged cost model (paper §5.1)."""

import pytest

from repro.core.cost_model import StagedCostModel
from repro.topology import LinkKind, dgx1, fully_connected
from repro.topology.topology import TopologyBuilder


def shared_bus_topology():
    """3 devices; 0->2 and 1->2 share one QPI-like bus connection."""
    b = TopologyBuilder("bus")
    for _ in range(3):
        b.add_device()
    bus = b.connection("bus", LinkKind.QPI)
    b.add_link(0, 2, (bus,))
    b.add_link(1, 2, (bus,))
    b.add_duplex_link(0, 1, LinkKind.NV1)
    return b.build()


class TestBasics:
    def test_empty_cost_zero(self):
        model = StagedCostModel(dgx1())
        assert model.total_cost() == 0.0

    def test_single_transfer_cost(self):
        topo = fully_connected(2, LinkKind.NV1)
        model = StagedCostModel(topo)
        link = topo.direct_link(0, 1)
        model.add(link, 0, 100.0)
        assert model.total_cost() == pytest.approx(100.0 / 24.22e9)

    def test_stage_time_is_max_over_connections(self):
        topo = fully_connected(3, LinkKind.NV1)
        model = StagedCostModel(topo)
        model.add(topo.direct_link(0, 1), 0, 100.0)
        model.add(topo.direct_link(0, 2), 0, 300.0)
        assert model.stage_time(0) == pytest.approx(300.0 / 24.22e9)

    def test_total_is_sum_of_stages(self):
        topo = fully_connected(3, LinkKind.NV1)
        model = StagedCostModel(topo)
        model.add(topo.direct_link(0, 1), 0, 100.0)
        model.add(topo.direct_link(1, 2), 1, 200.0)
        assert model.total_cost() == pytest.approx(300.0 / 24.22e9)

    def test_invalid_stage(self):
        topo = fully_connected(2, LinkKind.NV1)
        model = StagedCostModel(topo)
        with pytest.raises(ValueError):
            model.add(topo.direct_link(0, 1), 99, 1.0)


class TestContention:
    def test_shared_connection_aggregates(self):
        """Two links over one physical bus contend (paper's QPI rule)."""
        topo = shared_bus_topology()
        model = StagedCostModel(topo)
        model.add(topo.direct_link(0, 2), 0, 100.0)
        model.add(topo.direct_link(1, 2), 0, 100.0)
        # both ride the same bus: time is the aggregate 200 units
        assert model.stage_time(0) == pytest.approx(200.0 / 9.56e9)

    def test_multi_hop_link_takes_slowest_hop(self):
        topo = dgx1()
        model = StagedCostModel(topo)
        # 0 -> 5 crosses sockets: PCIe-QPI-PCIe; QPI is the bottleneck
        slow = [l for l in topo.links_between(0, 5) if not l.is_nvlink][0]
        model.add(slow, 0, 100.0)
        assert model.stage_time(0) == pytest.approx(100.0 / 9.56e9)

    def test_busiest_connection_reported(self):
        topo = shared_bus_topology()
        model = StagedCostModel(topo)
        model.add(topo.direct_link(0, 2), 0, 50.0)
        name, t = model.busiest_connection(0)
        assert name == "bus"
        assert t == pytest.approx(50.0 / 9.56e9)


class TestIncrementalCost:
    def test_increment_on_empty_stage(self):
        topo = fully_connected(2, LinkKind.NV1)
        model = StagedCostModel(topo)
        link = topo.direct_link(0, 1)
        inc = model.incremental_cost(link, 0, 10.0)
        assert inc == pytest.approx(10.0 / 24.22e9)

    def test_underloaded_link_is_free(self):
        """Load balancing (§5.2): adding to an idle link costs nothing."""
        topo = fully_connected(3, LinkKind.NV1)
        model = StagedCostModel(topo)
        model.add(topo.direct_link(0, 1), 0, 1000.0)
        inc = model.incremental_cost(topo.direct_link(0, 2), 0, 500.0)
        assert inc == 0.0

    def test_increment_equals_actual_delta(self):
        topo = shared_bus_topology()
        model = StagedCostModel(topo)
        model.add(topo.direct_link(0, 2), 0, 70.0)
        link = topo.direct_link(1, 2)
        predicted = model.incremental_cost(link, 0, 30.0)
        before = model.total_cost()
        model.add(link, 0, 30.0)
        assert model.total_cost() - before == pytest.approx(predicted)

    def test_path_cost_additive_across_stages(self):
        topo = fully_connected(3, LinkKind.NV1)
        model = StagedCostModel(topo)
        path = [(topo.direct_link(0, 1), 0), (topo.direct_link(1, 2), 1)]
        expected = sum(model.incremental_cost(l, s, 5.0) for l, s in path)
        assert model.path_cost(path, 5.0) == pytest.approx(expected)


class TestFeatureDimensionInvariance:
    def test_scaling_units_scales_cost_linearly(self):
        """Paper §5.1: the optimal plan is dimension-independent because
        payload size scales every link and stage identically."""
        topo = dgx1()
        m1 = StagedCostModel(topo)
        m2 = StagedCostModel(topo)
        transfers = [
            (topo.direct_link(0, 1), 0, 10.0),
            (topo.direct_link(1, 5), 1, 20.0),
            (topo.direct_link(0, 5), 0, 5.0),
        ]
        for link, stage, units in transfers:
            m1.add(link, stage, units)
            m2.add(link, stage, units * 7.0)
        assert m2.total_cost() == pytest.approx(7.0 * m1.total_cost())

    def test_total_seconds(self):
        topo = fully_connected(2, LinkKind.NV1)
        model = StagedCostModel(topo)
        model.add(topo.direct_link(0, 1), 0, 10.0)
        assert model.total_seconds(1024) == pytest.approx(
            model.total_cost() * 1024
        )


class TestClone:
    def test_clone_is_independent(self):
        topo = fully_connected(2, LinkKind.NV1)
        model = StagedCostModel(topo)
        model.add(topo.direct_link(0, 1), 0, 10.0)
        copy = model.clone()
        copy.add(topo.direct_link(0, 1), 0, 10.0)
        assert copy.total_cost() == pytest.approx(2 * model.total_cost())


class TestRemove:
    def test_remove_restores_state(self):
        topo = dgx1()
        model = StagedCostModel(topo)
        link = topo.direct_link(0, 1)
        other = topo.direct_link(0, 5)
        model.add(other, 0, 40.0)
        baseline = model.total_cost()
        model.add(link, 0, 100.0)
        model.add(link, 1, 60.0)
        model.remove(link, 1, 60.0)
        model.remove(link, 0, 100.0)
        assert model.total_cost() == pytest.approx(baseline)

    def test_remove_lowers_stage_bottleneck(self):
        topo = fully_connected(3, LinkKind.NV1)
        model = StagedCostModel(topo)
        big = topo.direct_link(0, 1)
        small = topo.direct_link(0, 2)
        model.add(big, 0, 300.0)
        model.add(small, 0, 100.0)
        model.remove(big, 0, 300.0)
        assert model.stage_time(0) == pytest.approx(100.0 / 24.22e9)

    def test_remove_more_than_committed_rejected(self):
        topo = fully_connected(2, LinkKind.NV1)
        model = StagedCostModel(topo)
        link = topo.direct_link(0, 1)
        model.add(link, 0, 10.0)
        with pytest.raises(ValueError):
            model.remove(link, 0, 20.0)

    def test_remove_path_inverse_of_add_path(self):
        topo = dgx1()
        model = StagedCostModel(topo)
        path = [(topo.direct_link(0, 1), 0), (topo.direct_link(1, 5), 1)]
        model.add_path(path, 12.0)
        model.remove_path(path, 12.0)
        assert model.total_cost() == 0.0
