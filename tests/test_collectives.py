"""Tests for the ring allreduce used for model synchronization."""

import numpy as np
import pytest

from repro.comm.collectives import RingAllreduce, ring_allreduce, ring_allreduce_time
from repro.topology import LinkKind, dgx1, fully_connected, ring, single_device


def random_blocks(n, shape=(11, 5), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape).astype(np.float32) for _ in range(n)]


class TestCorrectness:
    @pytest.mark.parametrize("topo_builder", [
        lambda: ring(2), lambda: ring(5), lambda: dgx1(8),
        lambda: fully_connected(3),
    ])
    def test_allreduce_sums(self, topo_builder):
        topo = topo_builder()
        blocks = random_blocks(topo.num_devices)
        out = ring_allreduce(topo, blocks)
        expected = np.sum(blocks, axis=0)
        assert len(out) == topo.num_devices
        for block in out:
            assert np.allclose(block, expected, atol=1e-4)

    def test_single_device_identity(self):
        topo = single_device()
        blocks = random_blocks(1)
        out = ring_allreduce(topo, blocks)
        assert np.allclose(out[0], blocks[0])

    def test_custom_order(self):
        topo = dgx1(4)
        blocks = random_blocks(4)
        out = ring_allreduce(topo, blocks, order=[3, 1, 0, 2])
        assert np.allclose(out[2], np.sum(blocks, axis=0), atol=1e-4)

    def test_order_must_be_permutation(self):
        with pytest.raises(ValueError):
            RingAllreduce(dgx1(4), order=[0, 1, 2, 2])

    def test_block_count_checked(self):
        with pytest.raises(ValueError):
            ring_allreduce(dgx1(4), random_blocks(3))

    def test_shape_mismatch_checked(self):
        blocks = random_blocks(4)
        blocks[1] = blocks[1][:, :2]
        with pytest.raises(ValueError):
            ring_allreduce(dgx1(4), blocks)

    def test_preserves_dtype(self):
        out = ring_allreduce(dgx1(4), random_blocks(4))
        assert out[0].dtype == np.float32


class TestTiming:
    def test_single_device_free(self):
        assert ring_allreduce_time(single_device(), 1e6) == 0.0

    def test_time_grows_with_payload(self):
        topo = ring(4)
        assert ring_allreduce_time(topo, 1e7) > ring_allreduce_time(topo, 1e5)

    def test_bandwidth_optimality_shape(self):
        """Doubling the ring size doesn't double the time: per-device
        traffic is 2 (n-1)/n of the payload, which saturates."""
        small = ring_allreduce_time(ring(2), 1e8)
        large = ring_allreduce_time(ring(8), 1e8)
        assert large < 2.5 * small

    def test_faster_links_are_faster(self):
        nv = ring_allreduce_time(ring(4, LinkKind.NV2), 1e7)
        eth = ring_allreduce_time(ring(4, LinkKind.ETHERNET), 1e7)
        assert nv < eth
