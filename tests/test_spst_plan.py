"""Tests for the SPST planner and communication plans."""

import numpy as np
import pytest

from repro.core import CommRelation, SPSTPlanner, peer_to_peer_plan
from repro.core.plan import CommPlan, VertexClassRoute
from repro.core.spst import PlanUnit
from repro.graph.csr import Graph
from repro.partition import partition
from repro.topology import LinkKind, dgx1, fully_connected, ring
from repro.topology.topology import TopologyBuilder


@pytest.fixture(scope="module")
def planned(small_graph_module):
    graph, rel, topo = small_graph_module
    plan = SPSTPlanner(topo, seed=0).plan(rel)
    return graph, rel, topo, plan


@pytest.fixture(scope="module")
def small_graph_module():
    from repro.graph.generators import rmat

    graph = rmat(300, 2400, seed=3)
    r = partition(graph, 8, seed=0)
    rel = CommRelation(graph, r.assignment, 8)
    return graph, rel, dgx1()


class TestPlanValidity:
    def test_plan_covers_relation(self, planned):
        _, rel, _, plan = planned
        plan.validate(rel)  # raises on any gap

    def test_routes_are_trees(self, planned):
        *_, plan = planned
        for route in plan.routes:
            assert route.reaches_all_destinations()

    def test_stage_bound(self, planned):
        _, _, topo, plan = planned
        assert plan.num_stages <= topo.num_devices - 1

    def test_deterministic(self, small_graph_module):
        _, rel, topo = small_graph_module
        p1 = SPSTPlanner(topo, seed=5).plan(rel)
        p2 = SPSTPlanner(topo, seed=5).plan(rel)
        t1 = [(t.src, t.dst, t.stage, t.vertices.tolist()) for t in p1.tuples()]
        t2 = [(t.src, t.dst, t.stage, t.vertices.tolist()) for t in p2.tuples()]
        assert t1 == t2


class TestPlanQuality:
    def test_beats_peer_to_peer_cost(self, planned):
        _, rel, topo, plan = planned
        p2p = peer_to_peer_plan(rel, topo)
        assert plan.estimated_cost(1024) < p2p.estimated_cost(1024)

    def test_prefers_fast_links(self, planned):
        """§5.2: SPST routes the bulk of the traffic over NVLink."""
        *_, plan = planned
        volumes = plan.volume_by_kind()
        nvlink = sum(v for k, v in volumes.items() if k.is_nvlink)
        other = sum(v for k, v in volumes.items() if not k.is_nvlink)
        assert nvlink > 3 * other

    def test_uses_forwarding_for_multicast(self):
        """A vertex needed by both sockets should relay over NVLink."""
        # Vertex 0 on device 0, consumed by devices 4..7 (other socket).
        src = np.zeros(4, dtype=np.int64)
        dst = np.arange(1, 5, dtype=np.int64)
        g = Graph(src, dst, 5)
        assignment = np.array([0, 4, 5, 6, 7])
        rel = CommRelation(g, assignment, 8)
        plan = SPSTPlanner(dgx1(), granularity="vertex", seed=0).plan(rel)
        assert plan.num_stages >= 2  # multi-hop tree, not a 4-way star

    def test_vertex_granularity_matches_chunk_on_singletons(self):
        """When every class has one vertex the two modes coincide."""
        src = np.array([0, 1, 2])
        dst = np.array([3, 4, 5])
        g = Graph(src, dst, 6)
        assignment = np.array([0, 1, 2, 3, 4, 5])
        rel = CommRelation(g, assignment, 8)
        topo = dgx1()
        pv = SPSTPlanner(topo, granularity="vertex", seed=1).plan(rel)
        pc = SPSTPlanner(topo, granularity="chunk", seed=1).plan(rel)
        assert pv.estimated_cost(1.0) == pytest.approx(pc.estimated_cost(1.0))


class TestPlannerEdgeCases:
    def test_empty_relation(self):
        g = Graph([0], [1], 4)
        rel = CommRelation(g, np.zeros(4, dtype=np.int64), 4)
        plan = SPSTPlanner(dgx1(4)).plan(rel)
        assert plan.routes == ()
        assert plan.num_stages == 0

    def test_ring_topology_multi_hop(self):
        """On a ring the planner must use relays: no direct links exist."""
        src = np.array([0])
        dst = np.array([1])
        g = Graph(src, dst, 2)
        assignment = np.array([0, 3])
        rel = CommRelation(g, assignment, 6)
        plan = SPSTPlanner(ring(6), granularity="vertex").plan(rel)
        plan.validate(rel)
        assert plan.num_stages == 3  # 0 -> 1 -> 2 -> 3 or the mirror path

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            SPSTPlanner(dgx1(), granularity="bogus")

    def test_invalid_chunks(self):
        with pytest.raises(ValueError):
            SPSTPlanner(dgx1(), chunks_per_class=0)

    def test_relation_larger_than_topology_rejected(self, small_graph):
        r = partition(small_graph, 8, seed=0)
        rel = CommRelation(small_graph, r.assignment, 8)
        with pytest.raises(ValueError):
            SPSTPlanner(dgx1(4)).plan(rel)


class TestCommPlan:
    def test_tuples_batch_per_link_stage(self, planned):
        *_, plan = planned
        seen = set()
        for t in plan.tuples():
            key = (t.src, t.dst, t.stage, t.link.kind)
            assert key not in seen or True  # duplicates allowed for parallel links
            seen.add(key)
            assert t.units == t.vertices.size > 0

    def test_tuple_conservation(self, planned):
        """Total tuple units equal total route edge-traversals."""
        *_, plan = planned
        route_units = sum(r.weight * len(r.edges) for r in plan.routes)
        assert plan.total_units() == route_units

    def test_backward_reverses_stages(self, planned):
        *_, plan = planned
        fwd = plan.tuples()
        bwd = plan.backward_tuples()
        total = plan.num_stages
        fwd_key = sorted((t.src, t.dst, t.stage) for t in fwd)
        bwd_key = sorted((t.dst, t.src, total - 1 - t.stage) for t in bwd)
        assert fwd_key == bwd_key

    def test_table_memory_accounts_both_sides(self, planned):
        *_, plan = planned
        assert plan.table_memory_bytes(8) == 16 * sum(
            t.units for t in plan.tuples()
        )

    def test_device_schedule_partitions_tuples(self, planned):
        _, _, topo, plan = planned
        total = 0
        for d in topo.devices():
            sched = plan.device_schedule(d)
            total += sum(len(v["sends"]) for v in sched.values())
        assert total == len(plan.tuples())

    def test_validate_catches_missing_coverage(self, planned):
        _, rel, topo, plan = planned
        broken = CommPlan(topo, plan.routes[:-1])
        with pytest.raises(ValueError):
            broken.validate(rel)

    def test_validate_catches_broken_tree(self):
        topo = fully_connected(3, LinkKind.NV1)
        # edge at stage 1 whose parent never received the vertex
        bad = VertexClassRoute(
            source=0,
            destinations=(2,),
            vertices=np.array([7]),
            edges=((topo.direct_link(1, 2), 1),),
        )
        with pytest.raises(ValueError):
            CommPlan(topo, [bad]).validate()

    def test_estimated_cost_scales_with_bytes(self, planned):
        *_, plan = planned
        assert plan.estimated_cost(8.0) == pytest.approx(
            2 * plan.estimated_cost(4.0)
        )


class TestRefinement:
    def test_refinement_never_hurts(self, small_graph_module):
        _, rel, topo = small_graph_module
        base = SPSTPlanner(topo, seed=0).plan(rel)
        refined = SPSTPlanner(topo, seed=0, refine_passes=3).plan(rel)
        refined.validate(rel)
        assert refined.estimated_cost(1.0) <= base.estimated_cost(1.0) + 1e-18

    def test_refinement_validates_and_is_deterministic(self, small_graph_module):
        _, rel, topo = small_graph_module
        a = SPSTPlanner(topo, seed=2, refine_passes=2).plan(rel)
        b = SPSTPlanner(topo, seed=2, refine_passes=2).plan(rel)
        assert a.estimated_cost(1.0) == pytest.approx(b.estimated_cost(1.0))

    def test_negative_passes_rejected(self):
        with pytest.raises(ValueError):
            SPSTPlanner(dgx1(), refine_passes=-1)
