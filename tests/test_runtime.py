"""Tests for the protocol-level runtime (events, live network, flags,
and the §6.1 master/client coordination)."""

import numpy as np
import pytest

from repro.comm.allgather import CompiledAllgather
from repro.core import CommRelation, SPSTPlanner
from repro.graph.generators import rmat
from repro.partition import partition
from repro.runtime import (
    Flag,
    LiveNetwork,
    ProtocolRunner,
    Simulator,
    Timeout,
    WaitFlag,
)
from repro.runtime.events import AllOf, Event, WaitEvent
from repro.topology import dgx1
from repro.topology.links import LinkKind, PhysicalConnection


class TestSimulator:
    def test_timeout_ordering(self):
        sim = Simulator()
        log = []

        def proc(name, delay):
            yield Timeout(delay)
            log.append((name, sim.now))

        sim.spawn(proc("b", 2.0), "b")
        sim.spawn(proc("a", 1.0), "a")
        sim.run()
        assert log == [("a", 1.0), ("b", 2.0)]

    def test_flag_wakeup(self):
        sim = Simulator()
        flag = Flag("f")
        log = []

        def waiter():
            yield WaitFlag(flag, 2)
            log.append(sim.now)

        def setter():
            yield Timeout(1.0)
            flag.increment()
            yield Timeout(1.0)
            flag.increment()

        sim.spawn(waiter(), "w")
        sim.spawn(setter(), "s")
        sim.run()
        assert log == [2.0]

    def test_event_payload_and_idempotence(self):
        ev = Event()
        ev.trigger("x")
        ev.trigger("y")
        assert ev.payload == "x"

    def test_allof(self):
        sim = Simulator()
        a, b = Event(), Event()
        log = []

        def waiter():
            yield AllOf([WaitEvent(a), WaitEvent(b)])
            log.append(sim.now)

        def trig():
            yield Timeout(1.0)
            a.trigger()
            yield Timeout(2.0)
            b.trigger()

        sim.spawn(waiter(), "w")
        sim.spawn(trig(), "t")
        sim.run()
        assert log == [3.0]

    def test_deadlock_detected(self):
        sim = Simulator()

        def stuck():
            yield WaitFlag(Flag("never"), 1)

        sim.spawn(stuck(), "stuck")
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)


class TestLiveNetwork:
    def conn(self, bw=10.0, name="c"):
        return PhysicalConnection(name, LinkKind.NV1, bw)

    def test_single_transfer_time(self):
        sim = Simulator()
        net = LiveNetwork(sim, alpha=1e-6)
        handle = net.transfer((self.conn(),), 10e9)

        def observer():
            yield WaitEvent(handle.done)

        sim.spawn(observer(), "obs")
        total = sim.run()
        assert total == pytest.approx(1.0 + 1e-6, rel=1e-6)

    def test_dynamic_arrival_shares_bandwidth(self):
        """A flow arriving mid-way slows the first one down fairly."""
        sim = Simulator()
        net = LiveNetwork(sim, alpha=0.0)
        c = self.conn()
        finish = {}

        def first():
            h = net.transfer((c,), 10e9, tag="first")
            yield WaitEvent(h.done)
            finish["first"] = sim.now

        def second():
            yield Timeout(0.5)
            h = net.transfer((c,), 5e9, tag="second")
            yield WaitEvent(h.done)
            finish["second"] = sim.now

        sim.spawn(first(), "f")
        sim.spawn(second(), "s")
        sim.run()
        # first: 5 GB alone (0.5 s), then shares: both at 5 GB/s.
        # remaining 5 GB of first and 5 GB of second drain together by 1.5.
        assert finish["first"] == pytest.approx(1.5, rel=1e-6)
        assert finish["second"] == pytest.approx(1.5, rel=1e-6)

    def test_zero_byte_transfer_completes(self):
        sim = Simulator()
        net = LiveNetwork(sim, alpha=1e-6)
        h = net.transfer((self.conn(),), 0.0)

        def obs():
            yield WaitEvent(h.done)

        sim.spawn(obs(), "o")
        assert sim.run() == pytest.approx(1e-6)

    def test_empty_path_rejected(self):
        sim = Simulator()
        net = LiveNetwork(sim)
        with pytest.raises(ValueError):
            net.transfer((), 10.0)


@pytest.fixture(scope="module")
def workload():
    graph = rmat(250, 1800, seed=4)
    r = partition(graph, 8, seed=0)
    rel = CommRelation(graph, r.assignment, 8)
    plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
    return graph, rel, plan


class TestProtocolRunner:
    def test_delivers_same_rows_as_compiled_allgather(self, workload):
        graph, rel, plan = workload
        rng = np.random.default_rng(0)
        h = rng.standard_normal((graph.num_vertices, 6)).astype(np.float32)
        blocks = [h[rel.local_vertices[d]] for d in range(8)]

        runner = ProtocolRunner(rel, plan)
        gathered, report = runner.run_data(blocks)
        reference = CompiledAllgather(rel, plan).forward(blocks)
        for a, b in zip(gathered, reference):
            assert np.array_equal(a, b)
        assert report.total_time > 0
        assert report.transfers == len(plan.tuples())

    def test_every_device_finishes(self, workload):
        _, rel, plan = workload
        report = ProtocolRunner(rel, plan).run_timed(256)
        assert set(report.device_finish) == set(range(8))
        assert max(report.device_finish.values()) <= report.total_time

    def test_centralized_pays_barriers(self, workload):
        _, rel, plan = workload
        dec = ProtocolRunner(rel, plan, coordination="decentralized")
        cen = ProtocolRunner(rel, plan, coordination="centralized")
        assert cen.run_timed(1024).total_time > dec.run_timed(1024).total_time

    def test_straggler_isolation(self):
        """§6.1: 'transient stragglers will not block the other GPUs' —
        a delayed device stalls its own partners, not unrelated pairs.

        Uses a sparse relation (0 -> 1, 7 -> 6 and a 2-hop 2 -> 4) on a
        ring: with all-pairs traffic every device legitimately waits for
        the straggler, and the 2-hop route guarantees a second stage so
        the centralized barrier has something to gate."""
        from repro.graph.csr import Graph
        from repro.topology import ring

        graph = Graph([0, 2, 4], [1, 3, 5], 6)
        assignment = np.array([0, 1, 7, 6, 2, 4])
        rel = CommRelation(graph, assignment, 8)
        plan = SPSTPlanner(ring(8), granularity="vertex", seed=0).plan(rel)
        assert plan.num_stages >= 2
        delay = 5e-5

        base = ProtocolRunner(rel, plan).run_timed(256)
        slow = ProtocolRunner(
            rel, plan, device_delays={7: delay}
        ).run_timed(256)
        # The unrelated 0 -> 1 pair is unaffected...
        assert (
            slow.device_finish[1] - base.device_finish[1] < 0.1 * delay
        )
        # ...while the straggler's partner absorbs the delay.
        assert slow.device_finish[6] - base.device_finish[6] > 0.9 * delay

        # Under centralized barriers, everyone absorbs it.
        cen_base = ProtocolRunner(
            rel, plan, coordination="centralized"
        ).run_timed(256)
        cen_slow = ProtocolRunner(
            rel, plan, coordination="centralized", device_delays={7: delay}
        ).run_timed(256)
        assert (
            cen_slow.device_finish[1] - cen_base.device_finish[1]
            > 0.9 * delay
        )

    def test_device_delay_shifts_total(self, workload):
        _, rel, plan = workload
        base = ProtocolRunner(rel, plan).run_timed(256).total_time
        slow = ProtocolRunner(
            rel, plan, device_delays={0: 1e-4}
        ).run_timed(256).total_time
        assert slow > base

    def test_invalid_coordination(self, workload):
        _, rel, plan = workload
        with pytest.raises(ValueError):
            ProtocolRunner(rel, plan, coordination="voodoo")

    def test_matches_transfer_level_executor_roughly(self, workload):
        """The protocol clock should land near the transfer-level
        simulator's (same network model + protocol overheads)."""
        from repro.simulator.executor import PlanExecutor

        _, rel, plan = workload
        protocol = ProtocolRunner(rel, plan).run_timed(1024).total_time
        transfer = PlanExecutor(dgx1()).execute(plan, 1024).total_time
        assert protocol == pytest.approx(transfer, rel=1.0)
        assert protocol >= transfer  # flags + control plane cost extra


class TestBootstrap:
    """§6.3: the one-off gather/scatter initialization."""

    def test_phases_positive_and_sum(self, workload):
        from repro.runtime import simulate_bootstrap

        _, rel, plan = workload
        report = simulate_bootstrap(rel, plan, feature_bytes_per_vertex=64)
        assert report.total_seconds == pytest.approx(
            report.graph_dispatch_seconds
            + report.feature_dispatch_seconds
            + report.table_dispatch_seconds
            + report.connection_exchange_seconds
        )
        assert report.graph_dispatch_seconds > 0
        assert report.feature_dispatch_seconds > 0
        assert report.table_dispatch_seconds > 0

    def test_fat_features_dominate(self, workload):
        from repro.runtime import simulate_bootstrap

        _, rel, plan = workload
        thin = simulate_bootstrap(rel, plan, feature_bytes_per_vertex=8)
        fat = simulate_bootstrap(rel, plan, feature_bytes_per_vertex=4096)
        assert fat.feature_dispatch_seconds > 10 * thin.feature_dispatch_seconds
        assert fat.total_seconds > thin.total_seconds

    def test_summary_renders(self, workload):
        from repro.runtime import simulate_bootstrap

        _, rel, plan = workload
        text = simulate_bootstrap(rel, plan, 64).summary()
        assert "bootstrap" in text and "features" in text

    def test_bootstrap_amortised_over_epochs(self, workload):
        """The init costs a handful of epochs' communication — one-off."""
        from repro.runtime import simulate_bootstrap
        from repro.simulator.executor import PlanExecutor

        _, rel, plan = workload
        boot = simulate_bootstrap(rel, plan, feature_bytes_per_vertex=96)
        epoch_comm = PlanExecutor(dgx1()).execute(plan, 96).total_time * 3
        assert boot.total_seconds < 100 * epoch_comm
