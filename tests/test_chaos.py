"""The chaos soak harness: generator, oracles, soak runner, shrinker, CLI.

The acceptance bar from the issue: the default distribution passes every
oracle over many seeds; a deliberately broken recovery policy (the
``policy_factory`` test hook) produces violations the ddmin shrinker
reduces to one or two events; and the minimized plan, saved as JSON,
replays to the same violation.
"""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.chaos import (
    DEFAULT_MIX,
    FaultPlanGenerator,
    SoakConfig,
    SoakRunner,
    shrink_plan,
)
from repro.chaos.oracles import (
    RunObservation,
    check_bytes,
    check_determinism,
    check_liveness,
    check_timeline,
)
from repro.faults import (
    DeviceStall,
    FaultPlan,
    FlagDrop,
    LinkLoss,
    NetworkPartition,
    RetryOnlyPolicy,
)
from repro.obs import soak_summary_json
from repro.topology import dgx1


@pytest.fixture(scope="module")
def runner():
    """One honest soak runner (default config), shared by the module."""
    return SoakRunner(SoakConfig())


@pytest.fixture(scope="module")
def broken_runner():
    """The shrinker's target: a policy that retries but never repairs,
    so any permanent link loss becomes a liveness violation."""
    return SoakRunner(SoakConfig(
        mix={"link-loss": 4.0},
        density=9.0,
        policy_factory=lambda: RetryOnlyPolicy(max_retries=2),
    ))


class TestGenerator:
    def test_same_seed_same_plan(self, runner):
        a = runner.generator.sample(7)
        b = runner.generator.sample(7)
        c = runner.generator.sample(8)
        assert a.events == b.events
        assert a.events != c.events

    def test_host_staging_wires_are_never_targets(self):
        topo = dgx1()
        gen = FaultPlanGenerator(
            horizon=1e-6,
            devices=range(8),
            connections=sorted(topo.connections),
            topology=topo,
        )
        host = set()
        for d in topo.devices():
            host |= {c.name for c in topo.host_write_path(d)}
            host |= {c.name for c in topo.host_read_path(d)}
        assert not host & set(gen.connections)
        for seed in range(30):
            for ev in gen.sample(seed).events:
                if isinstance(ev, NetworkPartition):
                    assert not host & set(ev.connections)

    def test_partitions_always_heal_by_default(self, runner):
        saw_one = False
        for seed in range(40):
            for ev in runner.generator.sample(seed).of_type(NetworkPartition):
                saw_one = True
                assert ev.duration is not None and ev.duration > 0
        assert saw_one

    def test_mix_restricts_kinds(self):
        gen = FaultPlanGenerator(
            horizon=1e-6, devices=range(4), connections=["a", "b"],
            mix={k: 0.0 for k in DEFAULT_MIX} | {"flag-drop": 1.0},
            density=6.0,
        )
        events = [ev for s in range(10) for ev in gen.sample(s).events]
        assert events and all(isinstance(ev, FlagDrop) for ev in events)

    def test_correlated_mode_picks_one_victim(self):
        gen = FaultPlanGenerator(
            horizon=1e-6, devices=range(8), connections=[],
            mix={k: 0.0 for k in DEFAULT_MIX} | {"device-stall": 1.0},
            density=8.0, correlated=True,
        )
        plan = gen.sample(3)
        victims = {ev.device for ev in plan.of_type(DeviceStall)}
        assert len(victims) == 1

    def test_burst_times_stay_in_window(self):
        gen = FaultPlanGenerator(
            horizon=1e-6, devices=range(8), connections=["a"],
            burstiness=1.0, density=12.0,
        )
        for ev in gen.sample(5).events:
            t = getattr(ev, "time", None)
            if t is not None:
                assert 0.0 <= t <= 1e-6 * 0.98 + 1e-18

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            FaultPlanGenerator(horizon=0.0, devices=[0], connections=[])
        with pytest.raises(ValueError):
            FaultPlanGenerator(horizon=1.0, devices=[], connections=[])
        with pytest.raises(ValueError):
            FaultPlanGenerator(horizon=1.0, devices=[0], connections=[],
                               density=-1.0)
        with pytest.raises(ValueError):
            FaultPlanGenerator(horizon=1.0, devices=[0], connections=[],
                               burstiness=1.5)
        with pytest.raises(ValueError):
            FaultPlanGenerator(horizon=1.0, devices=[0], connections=[],
                               mix={"bit-rot": 2.0})
        with pytest.raises(ValueError):
            FaultPlanGenerator(horizon=1.0, devices=[0], connections=[],
                               mix={k: 0.0 for k in DEFAULT_MIX})


class TestOracles:
    def _obs(self, **over):
        base = dict(
            gathered=None, total_time=1.0, transfers=4,
            device_finish={0: 0.5}, stage_finish={(0, 0): 0.2, (0, 1): 0.5},
            log_signature=(), trace_signature=(), metrics={},
        )
        base.update(over)
        return RunObservation(**base)

    def test_timeline_catches_out_of_range_finish(self):
        obs = self._obs(device_finish={0: 2.0})
        assert any(v.oracle == "timeline" for v in check_timeline(obs))

    def test_timeline_catches_stage_regression(self):
        obs = self._obs(stage_finish={(0, 0): 0.9, (0, 1): 0.3})
        assert any("before" in v.detail for v in check_timeline(obs))

    def test_liveness_allows_only_scheduled_crashes(self):
        lost = self._obs(error="DeviceLostError", error_detail="device 2")
        assert check_liveness(lost, crashes_scheduled=True) == []
        assert check_liveness(lost, crashes_scheduled=False)
        stuck = self._obs(error="UnrecoverableFaultError", error_detail="x")
        assert check_liveness(stuck, crashes_scheduled=True)

    def test_bytes_flags_count_and_unplanned_traffic(self):
        obs = self._obs(
            gathered=[np.zeros(1)], transfers=3,
            metrics={"comm.bytes{conn=a}": 100.0, "comm.bytes{conn=b}": 7.0},
        )
        out = check_bytes(obs, {"a": 100.0}, num_tuples=4, rerouted=False)
        details = " ".join(v.detail for v in out)
        assert "3 transfers" in details and "never" in details

    def test_bytes_relaxed_after_reroute(self):
        obs = self._obs(gathered=[np.zeros(1)], transfers=4,
                        metrics={"comm.bytes{conn=b}": 7.0})
        assert check_bytes(obs, {"a": 100.0}, 4, rerouted=True) == []

    def test_determinism_compares_everything(self):
        a = self._obs()
        assert check_determinism(a, self._obs()) == []
        assert check_determinism(a, self._obs(total_time=2.0))
        assert check_determinism(a, self._obs(error="RuntimeError"))
        assert check_determinism(a, self._obs(log_signature=((0.1, "l", "retry", "s"),)))


class TestSoak:
    def test_default_distribution_passes_all_oracles(self, runner):
        report = runner.run(8)
        assert report.passed, report.summary()
        d = report.as_dict()
        assert d["seeds"] == 8 and d["failed"] == 0
        assert d["violations_by_oracle"] == {}

    def test_training_parity_seed(self, runner):
        result = runner.run_seed(0, train=True)
        assert result.passed, [v.as_dict() for v in result.violations]

    def test_report_export_is_deterministic(self, runner, tmp_path):
        a = soak_summary_json(runner.run(3))
        b = soak_summary_json(runner.run(3))
        assert a == b
        parsed = json.loads(a)
        assert parsed["seeds"] == 3 and "config" in parsed


class TestShrinker:
    def _failing_seed(self, broken_runner, min_events=8):
        """The first seed whose plan is big and fails under the broken policy."""
        for seed in range(40):
            plan = broken_runner.generator.sample(seed)
            if len(plan) < min_events:
                continue
            violations, _ = broken_runner.check_plan(plan)
            if violations:
                return plan, {v.oracle for v in violations}
        pytest.fail("no failing seed with >= 8 events in range(40)")

    def test_broken_policy_shrinks_to_minimal_plan(self, broken_runner, tmp_path):
        plan, oracles = self._failing_seed(broken_runner)
        assert len(plan) >= 8

        def failing(candidate):
            vs, _ = broken_runner.check_plan(candidate)
            return any(v.oracle in oracles for v in vs)

        result = shrink_plan(plan, failing, max_runs=150)
        assert 1 <= result.events <= 2
        assert result.original_events == len(plan)
        assert not result.exhausted

        # The minimized schedule replays, from JSON, to the same violation.
        path = tmp_path / "min.json"
        result.plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.events == result.plan.events
        replayed, _ = broken_runner.check_plan(loaded)
        assert oracles & {v.oracle for v in replayed}

    def test_minimized_plan_passes_under_honest_policy(self, runner, broken_runner):
        """The shrunk plan indicts the policy, not the runtime."""
        plan, oracles = self._failing_seed(broken_runner)

        def failing(candidate):
            vs, _ = broken_runner.check_plan(candidate)
            return any(v.oracle in oracles for v in vs)

        result = shrink_plan(plan, failing, max_runs=150)
        honest, _ = runner.check_plan(result.plan)
        assert honest == []

    def test_shrink_rejects_passing_plan(self, runner):
        plan = runner.generator.sample(0)
        with pytest.raises(ValueError):
            shrink_plan(plan, lambda p: False)

    def test_budget_exhaustion_returns_best_so_far(self):
        plan = FaultPlan([
            LinkLoss(connection=f"c{i}", time=float(i) * 1e-7)
            for i in range(6)
        ])
        calls = {"n": 0}

        def failing(candidate):
            calls["n"] += 1
            return any(ev.connection == "c3" for ev in candidate.events)

        result = shrink_plan(plan, failing, max_runs=1)
        assert result.exhausted and result.events == 6

        full = shrink_plan(plan, failing, max_runs=100)
        assert full.events == 1 and not full.exhausted
        assert full.plan.events[0].connection == "c3"


class TestChaosCLI:
    def test_smoke_soak(self, capsys):
        assert main(["chaos", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "3/3 seeds passed" in out

    def test_json_and_summary_file(self, capsys, tmp_path):
        summary = tmp_path / "soak.json"
        assert main(["chaos", "--seeds", "2", "--json",
                     "--summary", str(summary)]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["passed"] == 2
        on_disk = json.loads(summary.read_text())
        assert on_disk["seeds"] == 2

    def test_replay_roundtrip(self, runner, capsys, tmp_path):
        path = tmp_path / "plan.json"
        runner.generator.sample(4).save(path)
        assert main(["chaos", "--replay", str(path)]) == 0
        assert "passed every oracle" in capsys.readouterr().out

    def test_replay_missing_and_malformed(self, capsys, tmp_path):
        assert main(["chaos", "--replay", str(tmp_path / "nope.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text('{"events": [{"type": "bit-rot"}]}')
        assert main(["chaos", "--replay", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "not found" in err and "unknown fault kind" in err
