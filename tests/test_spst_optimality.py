"""SPST vs brute-force optimal plans on tiny instances.

The SPST algorithm is greedy, so it carries no optimality guarantee;
the paper argues it is good in practice.  Here we *measure* the greedy
gap: enumerate every feasible plan (all per-unit rooted trees with
stage = depth, all combinations across units) on 4-device topologies
and compare the exhaustive optimum against SPST's result.
"""

import itertools
from typing import Dict, List, Sequence, Tuple

import numpy as np
import pytest

from repro.core.cost_model import StagedCostModel
from repro.core.plan import CommPlan, VertexClassRoute
from repro.core.relation import MulticastClass
from repro.core.spst import SPSTPlanner
from repro.topology import LinkKind, dgx1, fully_connected
from repro.topology.topology import TopologyBuilder


def contended_topology():
    """4 devices, fast ring, plus a shared slow bus hitting device 3."""
    b = TopologyBuilder("tiny-bus")
    for _ in range(4):
        b.add_device()
    for i in range(4):
        b.add_duplex_link(i, (i + 1) % 4, LinkKind.NV1, name=f"r{i}")
    bus = b.connection("bus", LinkKind.QPI)
    b.add_link(0, 2, (bus,))
    b.add_link(1, 3, (bus,))
    return b.build()


def all_trees(topology, source: int, dests: Tuple[int, ...]):
    """Every (link, stage) tree rooted at ``source`` covering ``dests``.

    Enumerated as parent functions over every superset of the terminals.
    """
    devices = list(topology.devices())
    terminals = set(dests) | {source}
    others = [d for d in devices if d not in terminals]
    trees = []
    for r in range(len(others) + 1):
        for extra in itertools.combinations(others, r):
            nodes = sorted(terminals | set(extra))
            non_roots = [n for n in nodes if n != source]
            # every parent assignment; filter to connected DAGs (trees)
            parent_options = []
            for n in non_roots:
                options = []
                for p in nodes:
                    if p == n:
                        continue
                    options.extend(topology.links_between(p, n))
                parent_options.append(options)
            for combo in itertools.product(*parent_options):
                parent: Dict[int, object] = dict(zip(non_roots, combo))
                # compute depths; reject cycles (unreachable nodes)
                depth = {source: 0}
                progress = True
                while progress and len(depth) < len(nodes):
                    progress = False
                    for n, link in parent.items():
                        if n not in depth and link.src in depth:
                            depth[n] = depth[link.src] + 1
                            progress = True
                if len(depth) != len(nodes):
                    continue
                edges = tuple(
                    (link, depth[link.src]) for n, link in parent.items()
                )
                trees.append(edges)
    return trees


def optimal_cost(topology, units: Sequence[MulticastClass]) -> float:
    """Exhaustive minimum of t(S) over all per-unit tree choices."""
    per_unit_trees = [
        all_trees(topology, u.source, u.destinations) for u in units
    ]
    best = float("inf")
    for combo in itertools.product(*per_unit_trees):
        model = StagedCostModel(topology)
        for unit, edges in zip(units, combo):
            for link, stage in edges:
                model.add(link, stage, unit.size)
        best = min(best, model.total_cost())
    return best


def make_units(specs) -> List[MulticastClass]:
    units = []
    offset = 0
    for source, dests, weight in specs:
        units.append(
            MulticastClass(
                source=source,
                destinations=tuple(dests),
                vertices=np.arange(offset, offset + weight, dtype=np.int64),
            )
        )
        offset += weight
    return units


class _UnitRelation:
    def __init__(self, units, num_devices):
        self.classes = list(units)
        self.num_devices = num_devices


CASES = [
    # (topology builder, unit specs)
    (lambda: fully_connected(4, LinkKind.NV1),
     [(0, (1, 2, 3), 5), (1, (0,), 5), (2, (3,), 5)]),
    (lambda: fully_connected(4, LinkKind.NV1),
     [(0, (1,), 9), (0, (1,), 3), (2, (1,), 6)]),
    (contended_topology,
     [(0, (2,), 4), (1, (3,), 4)]),
    (contended_topology,
     [(0, (2, 3), 4), (1, (2,), 2), (3, (0,), 2)]),
    (lambda: dgx1(4),
     [(0, (1, 2, 3), 3), (3, (0, 1), 3)]),
]


class TestGreedyGap:
    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_spst_close_to_exhaustive_optimum(self, case):
        builder, specs = CASES[case]
        topology = builder()
        units = make_units(specs)
        optimum = optimal_cost(topology, units)
        relation = _UnitRelation(units, topology.num_devices)
        best_greedy = float("inf")
        for seed in range(4):
            plan = SPSTPlanner(
                topology, granularity="chunk", chunks_per_class=1,
                seed=seed, refine_passes=2,
            ).plan(relation)
            best_greedy = min(best_greedy, plan.cost_model().total_cost())
        assert best_greedy >= optimum - 1e-18  # optimum really is a bound
        assert best_greedy <= 1.35 * optimum, (
            f"case {case}: greedy {best_greedy:.3e} vs optimal {optimum:.3e}"
        )

    def test_single_unit_single_dest_is_exactly_optimal(self):
        """With one unit and one destination, Dijkstra IS optimal."""
        topology = contended_topology()
        units = make_units([(0, (2,), 7)])
        optimum = optimal_cost(topology, units)
        plan = SPSTPlanner(topology, chunks_per_class=1, seed=0).plan(
            _UnitRelation(units, 4)
        )
        assert plan.cost_model().total_cost() == pytest.approx(optimum)
