"""Auto-tuner selection correctness on Table-5 style fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune import (
    AutoTuner,
    CandidateScheme,
    ExhaustiveSearch,
    SearchSpace,
    SuccessiveHalving,
    select_driver,
)
from repro.baselines.strategies import evaluate_scheme
from repro.obs.metrics import global_metrics
from repro.topology.presets import dgx1, dual_dgx1


@pytest.fixture(scope="module")
def single_machine_tuner(request):
    """Exhaustively tuned 8-GPU single-machine fixture."""
    small_graph = request.getfixturevalue("small_graph")
    tuner = AutoTuner(small_graph, dgx1(), seed=0)
    return tuner, tuner.tune()


@pytest.fixture(scope="module")
def dual_machine_tuner(request):
    """16-GPU dual-machine fixture — the Table 5 setting (dgcl-r lives)."""
    community_graph = request.getfixturevalue("community_graph")
    tuner = AutoTuner(community_graph, dual_dgx1(), seed=0)
    return tuner, tuner.tune()


class TestSpace:
    """Feasibility and dedup of the candidate enumeration."""

    def test_swap_only_single_machine(self):
        single = {c.strategy for c in SearchSpace(dgx1()).candidates()}
        dual = {c.strategy for c in SearchSpace(dual_dgx1()).candidates()}
        assert "swap" in single and "dgcl-r" not in single
        assert "dgcl-r" in dual and "swap" not in dual

    def test_canonicalisation_dedupes(self):
        # Replication ignores method and chunking: the sweep collapses.
        space = SearchSpace(
            dgx1(), strategies=("replication",),
            partitioners=("hierarchical",),
            methods=(None, "cuda-vm"), chunk_options=(1, 4),
        )
        assert len(space.candidates()) == 1

    def test_plan_based_only_filter(self):
        space = SearchSpace(dual_dgx1(), plan_based_only=True)
        assert all(c.plan_based for c in space.candidates())

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            CandidateScheme(strategy="quantum")


class TestSelection:
    """The pick is never worse than any hand-picked fixed strategy."""

    def test_auto_beats_fixed_single_machine(self, single_machine_tuner):
        tuner, report = single_machine_tuner
        for cand in tuner.space.candidates():
            trial = tuner.evaluate(cand)  # memoised: costs nothing extra
            assert report.best.cost <= trial.cost + 1e-12, cand.label()

    def test_auto_beats_fixed_dual_machine(self, dual_machine_tuner):
        tuner, report = dual_machine_tuner
        strategies = {c.strategy for c in tuner.space.candidates()}
        assert "dgcl-r" in strategies  # the Table 5 hybrid is in the race
        for cand in tuner.space.candidates():
            trial = tuner.evaluate(cand)
            assert report.best.cost <= trial.cost + 1e-12, cand.label()

    def test_plan_based_winner_compiles(self, small_graph):
        tuner = AutoTuner(
            small_graph, dgx1(),
            space=SearchSpace(dgx1(), plan_based_only=True),
        )
        report = tuner.tune()
        plan = report.build_plan()
        workload = report.workload_for(report.candidate)
        plan.validate(workload.relation)

    def test_method_dimension_sweeps(self, small_graph):
        space = SearchSpace(
            dgx1(), strategies=("dgcl",), partitioners=("hierarchical",),
            methods=(None, "cuda-vm", "pinned-host"),
        )
        tuner = AutoTuner(small_graph, dgx1(), space=space)
        report = tuner.tune()
        methods = {t.candidate.method for t in report.trials}
        assert methods == {None, "cuda-vm", "pinned-host"}
        # Forcing everything through pinned host memory cannot beat the
        # automatic per-pair selection on an NVLink machine.
        by_method = {t.candidate.method: t.cost for t in report.trials}
        assert by_method[None] <= by_method["pinned-host"] + 1e-12

    def test_partitioner_dimension_sweeps(self, single_machine_tuner):
        _, report = single_machine_tuner
        assert {t.candidate.partitioner for t in report.trials} == {
            "hierarchical", "metis",
        }


class TestDrivers:
    """Exhaustive and successive-halving agreement."""

    def test_halving_agrees_with_exhaustive(self, community_graph):
        topo = dgx1()
        exhaustive = AutoTuner(
            community_graph, topo, driver=ExhaustiveSearch()
        ).tune()
        halving = AutoTuner(
            community_graph, topo, driver=SuccessiveHalving(eta=2)
        ).tune()
        assert halving.best.candidate == exhaustive.best.candidate
        assert halving.best.cost == pytest.approx(exhaustive.best.cost)

    def test_halving_final_rung_is_full_fidelity(self, community_graph):
        report = AutoTuner(
            community_graph, dgx1(), driver=SuccessiveHalving(eta=3)
        ).tune()
        assert report.best.fidelity == 1.0
        assert any(t.fidelity < 1.0 for t in report.trials)  # short runs ran

    def test_select_driver_threshold(self):
        assert isinstance(select_driver(3), ExhaustiveSearch)
        assert isinstance(select_driver(100), SuccessiveHalving)


class TestMemoisation:
    """evaluate_scheme memoises identical (plan, topology) pricing."""

    def test_repeat_evaluation_hits(self, single_machine_tuner):
        tuner, _ = single_machine_tuner
        cand = tuner.space.candidates()[0]
        counter = global_metrics().counter(
            "cache.lookups", cache="evaluate", outcome="hit"
        )
        before = counter.value
        first = tuner.evaluate(cand)
        second = tuner.evaluate(cand)
        assert counter.value > before
        assert second.result.epoch_time == first.result.epoch_time

    def test_memo_returns_independent_copies(self, small_graph):
        tuner = AutoTuner(small_graph, dgx1())
        cand = tuner.space.candidates()[0]
        a = tuner.evaluate(cand).result
        a.detail["poisoned"] = 1.0
        b = tuner.evaluate(cand).result
        assert "poisoned" not in b.detail

    def test_telemetry_bypasses_memo(self, single_machine_tuner):
        from repro.obs import MetricsRegistry, Tracer

        tuner, _ = single_machine_tuner
        workload = tuner._workload(CandidateScheme("dgcl"), 1.0)
        tracer, metrics = Tracer(), MetricsRegistry()
        result = evaluate_scheme(workload, scheme="dgcl", tracer=tracer,
                                 metrics=metrics)
        assert result.ok and len(tracer.events()) > 0
