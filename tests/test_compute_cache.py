"""Tests for the compute/memory models and the on-disk cache."""

import numpy as np
import pytest

from repro.cache import cached_assignment
from repro.gnn.models import build_commnet, build_gcn, build_gin
from repro.simulator.compute import (
    ComputeModel,
    LayerComputeCost,
    partition_memory_bytes,
    training_memory_bytes,
)


class TestLayerComputeCost:
    def test_addition(self):
        a = LayerComputeCost(10, 20, 1)
        b = LayerComputeCost(5, 5, 2)
        c = a + b
        assert (c.agg_bytes, c.dense_flops, c.num_kernels) == (15, 25, 3)

    def test_scaling_keeps_kernels(self):
        c = LayerComputeCost(10, 20, 3).scaled(2.0)
        assert (c.agg_bytes, c.dense_flops, c.num_kernels) == (20, 40, 3)


class TestComputeModel:
    def test_seconds_formula(self):
        m = ComputeModel(agg_bandwidth=1e9, dense_flops=1e9,
                         kernel_latency=1e-6)
        cost = LayerComputeCost(agg_bytes=2e9, dense_flops=3e9, num_kernels=4)
        assert m.seconds(cost) == pytest.approx(2 + 3 + 4e-6)

    def test_atomic_reduce_slower(self):
        m = ComputeModel()
        fast = m.gradient_reduce_seconds(1e6, atomic=False)
        slow = m.gradient_reduce_seconds(1e6, atomic=True)
        assert slow == pytest.approx(fast * m.atomic_slowdown)

    def test_gcn_project_first_shrinks_aggregation(self):
        """DGL's project-then-aggregate: GCN aggregation streams the
        output width when it is smaller."""
        wide_in = build_gcn(602, 256, 41).layers[0]
        cost = wide_in.compute_cost(100, 150, 1000)
        assert cost.agg_bytes == 2.0 * 1000 * 256 * 4  # out dim, not 602

    def test_gin_cannot_project_first(self):
        gin = build_gin(602, 256, 41).layers[0]
        cost = gin.compute_cost(100, 150, 1000)
        assert cost.agg_bytes == 2.0 * 1000 * 602 * 4  # input width

    def test_model_ordering_gcn_commnet_gin(self):
        """Paper §7: GCN < CommNet < GIN in computation complexity."""
        m = ComputeModel()
        times = []
        for build in (build_gcn, build_commnet, build_gin):
            model = build(256, 256, 16)
            times.append(m.seconds(model.compute_cost(1000, 1200, 6000)))
        assert times[0] < times[1] < times[2]


class TestMemoryModels:
    def test_training_memory_monotone_in_rows(self):
        dims = [256, 256, 16]
        assert training_memory_bytes(2000, 100, dims) > training_memory_bytes(
            1000, 100, dims
        )

    def test_partition_memory_remote_cheaper_than_local(self):
        dims = [256, 256, 16]
        boundary = [256, 256]
        local_heavy = partition_memory_bytes(2000, 0, 100, dims, boundary)
        remote_heavy = partition_memory_bytes(0, 2000, 100, dims, boundary)
        assert remote_heavy < local_heavy

    def test_partition_memory_vs_replication(self):
        """The closure costs more than the same rows split local/remote."""
        dims = [256, 256, 16]
        boundary = [256, 256]
        part = partition_memory_bytes(500, 1500, 5000, dims, boundary)
        repl = training_memory_bytes(2000, 5000, dims)
        assert repl > part


class TestDiskCache:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def compute():
            calls.append(1)
            return np.arange(10, dtype=np.int64)

        a = cached_assignment(("k", 1), 10, compute)
        b = cached_assignment(("k", 1), 10, compute)
        assert np.array_equal(a, b)
        assert len(calls) == 1  # second call came from disk

    def test_different_keys_diverge(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        a = cached_assignment(("k", 1), 5, lambda: np.zeros(5, dtype=np.int64))
        b = cached_assignment(("k", 2), 5, lambda: np.ones(5, dtype=np.int64))
        assert not np.array_equal(a, b)

    def test_disabled_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "0")
        calls = []

        def compute():
            calls.append(1)
            return np.zeros(3, dtype=np.int64)

        cached_assignment(("x",), 3, compute)
        cached_assignment(("x",), 3, compute)
        assert len(calls) == 2

    def test_size_mismatch_recomputes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cached_assignment(("y",), 4, lambda: np.zeros(4, dtype=np.int64))
        out = cached_assignment(("y",), 6, lambda: np.ones(6, dtype=np.int64))
        assert out.size == 6
