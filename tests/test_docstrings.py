"""Documentation guard: every public item carries a docstring.

The deliverables require doc comments on every public API; this test
walks the installed package and fails on any public module, class or
function without one.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestDocstrings:
    def test_every_module_documented(self):
        missing = [m.__name__ for m in iter_modules() if not m.__doc__]
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in iter_modules():
            for name, obj in public_members(module):
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_public_methods_documented(self):
        missing = []
        for module in iter_modules():
            for name, obj in public_members(module):
                if not inspect.isclass(obj):
                    continue
                for mname, member in vars(obj).items():
                    if mname.startswith("_") or not callable(member):
                        continue
                    if isinstance(member, (staticmethod, classmethod)):
                        member = member.__func__
                    if not inspect.isfunction(member):
                        continue
                    if not inspect.getdoc(member):
                        missing.append(f"{module.__name__}.{name}.{mname}")
        assert not missing, f"undocumented public methods: {missing}"
