"""Chaos soak over the serving control plane (satellite).

The soak runner draws a random fault plan per seed and, with
``serve_every`` armed, replays a serving campaign under it twice —
checking signature determinism plus the serving accounting and
deadline oracles alongside the training-side oracles.
"""

from __future__ import annotations

import pytest

from repro.chaos.oracles import ORACLES
from repro.chaos.soak import SoakConfig, SoakRunner


class TestServeOracleRegistry:
    def test_serving_oracles_are_registered(self):
        assert ORACLES[-2:] == ("serve-accounting", "serve-deadline")


class TestServeSoak:
    @pytest.mark.slow
    def test_twenty_five_seeds_survive_faulted_serving(self):
        config = SoakConfig(
            gpus=4, serve_every=1, serve_scenario="bursty",
            serve_horizon_scale=0.15,
        )
        report = SoakRunner(config).run(seeds=25)
        failed = [r for r in report.results if r.violations]
        assert not failed, "\n".join(
            f"seed {r.seed}: {[str(v) for v in r.violations]}"
            for r in failed
        )
        assert report.passed and len(report.results) == 25

    def test_soak_smoke_three_seeds(self):
        config = SoakConfig(
            gpus=4, serve_every=1, serve_scenario="poisson",
            serve_horizon_scale=0.15,
        )
        report = SoakRunner(config).run(seeds=3)
        assert report.passed and len(report.results) == 3
