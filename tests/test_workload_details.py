"""Edge-case tests for Workload plumbing and the Swap executor."""

import numpy as np
import pytest

from repro.baselines import Workload, evaluate_scheme
from repro.baselines.strategies import clear_caches
from repro.core.relation import CommRelation
from repro.graph.csr import Graph
from repro.graph.datasets import DatasetSpec
from repro.graph.generators import rmat
from repro.simulator.executor import SwapExecutor
from repro.topology import dgx1


def tiny_workload(topology=None, num_layers=2):
    graph = rmat(300, 2500, seed=17)
    spec = DatasetSpec(
        name="tiny-cells", num_vertices=300, num_edges=2500,
        feature_size=24, hidden_size=12, num_classes=3,
        builder=lambda s: graph, paper_vertices="-", paper_edges="-",
        paper_avg_degree=8.3,
    )
    return Workload("tiny-cells", "gcn", topology or dgx1(),
                    num_layers=num_layers, graph=graph, spec=spec)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestWorkloadPlumbing:
    def test_device_slice_consistency(self):
        w = tiny_workload()
        total_local = 0
        total_edges = 0
        for d in range(8):
            num_local, num_rows, num_edges = w.device_slice(d)
            assert num_rows >= num_local
            total_local += num_local
            total_edges += num_edges
        assert total_local == w.graph.num_vertices
        assert total_edges == w.graph.num_edges

    def test_boundary_bytes_three_layers(self):
        w = tiny_workload(num_layers=3)
        assert w.boundary_bytes() == [24 * 4, 12 * 4, 12 * 4]

    def test_plan_shared_across_workload_instances(self):
        """Plans key on (dataset, topology, seed): two Workloads with the
        same cell share one plan object — the paper's reuse argument."""
        topo = dgx1()
        a = tiny_workload(topo)
        b = tiny_workload(topo)
        assert a.spst_plan is b.spst_plan
        assert a.p2p_plan is b.p2p_plan

    def test_clear_caches_breaks_sharing(self):
        topo = dgx1()
        a = tiny_workload(topo)
        plan_a = a.spst_plan
        clear_caches()
        b = tiny_workload(topo)
        assert b.spst_plan is not plan_a

    def test_model_sync_time_zero_single_device(self):
        from repro.topology import single_device

        w = tiny_workload(single_device())
        assert w.model_sync_time == 0.0

    def test_three_layer_epoch_costs_more_comm(self):
        shallow = evaluate_scheme(tiny_workload(num_layers=2), scheme="dgcl")
        clear_caches()
        deep = evaluate_scheme(tiny_workload(num_layers=3), scheme="dgcl")
        assert deep.comm_time > shallow.comm_time


class TestSwapDetails:
    @pytest.fixture(scope="class")
    def relation(self):
        graph = rmat(300, 2500, seed=17)
        from repro.partition import partition

        r = partition(graph, 8, seed=0)
        return CommRelation(graph, r.assignment, 8)

    def test_no_remote_vertices_means_cheap_reads(self):
        """A relation with no cross edges only pays the dump phase."""
        g = Graph([0, 1], [1, 0], 16)
        assignment = np.zeros(16, dtype=np.int64)
        rel = CommRelation(g, assignment, 8)
        report = SwapExecutor(dgx1()).execute(rel, 64, dump_bytes_per_unit=64)
        # the only volume is device 0 dumping its 16 local rows
        assert report.total_time < 1e-5

    def test_phases_ordered(self, relation):
        report = SwapExecutor(dgx1()).execute(
            relation, 128, dump_bytes_per_unit=128
        )
        assert report.stage_finish[0] <= report.stage_finish[1]
        assert report.stage_finish[1] == pytest.approx(report.total_time)

    def test_host_efficiency_scales_time(self, relation):
        fast = SwapExecutor(dgx1(), host_efficiency=1.0).execute(relation, 128)
        slow = SwapExecutor(dgx1(), host_efficiency=0.5).execute(relation, 128)
        assert slow.total_time > 1.5 * fast.total_time

    def test_bigger_payload_costs_more(self, relation):
        ex = SwapExecutor(dgx1())
        small = ex.execute(relation, 16, dump_bytes_per_unit=16)
        large = ex.execute(relation, 512, dump_bytes_per_unit=512)
        assert large.total_time > small.total_time
