"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    configuration_model,
    erdos_renyi,
    grid_graph,
    locality_power_law,
    planted_partition,
    power_law_degrees,
    rmat,
    star_graph,
)


class TestRmat:
    def test_edge_count_close_to_target(self):
        g = rmat(1000, 8000, seed=1)
        # dedup drops some; should stay within 20 % of target
        assert 0.8 * 8000 <= g.num_edges <= 8000

    def test_deterministic(self):
        a, b = rmat(500, 2000, seed=7), rmat(500, 2000, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        assert rmat(500, 2000, seed=1) != rmat(500, 2000, seed=2)

    def test_skewed_degrees(self):
        g = rmat(2000, 20000, seed=2)
        deg = g.out_degree()
        # power-law-ish: max degree far above the mean
        assert deg.max() > 5 * deg.mean()

    def test_no_self_loops(self):
        src, dst = rmat(200, 1000, seed=3).edges
        assert (src != dst).all()

    def test_undirected_flag_symmetrises(self):
        g = rmat(200, 800, seed=4, undirected=True)
        src, dst = g.edges
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert all((v, u) in pairs for u, v in pairs)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(100, 100, a=0.6, b=0.3, c=0.3)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(300, 1500, seed=0)
        assert 0.9 * 1500 <= g.num_edges <= 1500

    def test_deterministic(self):
        assert erdos_renyi(100, 400, seed=5) == erdos_renyi(100, 400, seed=5)


class TestPowerLawDegrees:
    def test_mean_near_target(self):
        deg = power_law_degrees(5000, 10.0, seed=0)
        assert 8.0 <= deg.mean() <= 12.0

    def test_minimum_degree_one(self):
        deg = power_law_degrees(1000, 3.0, seed=1)
        assert deg.min() >= 1

    def test_capped_by_graph_size(self):
        deg = power_law_degrees(50, 5.0, seed=2)
        assert deg.max() < 50

    def test_invalid_average(self):
        with pytest.raises(ValueError):
            power_law_degrees(100, 0.0)


class TestConfigurationModel:
    def test_out_degrees_bounded_by_request(self):
        degrees = np.array([3, 2, 1, 0, 4])
        g = configuration_model(degrees, seed=0)
        assert (g.out_degree() <= degrees).all()

    def test_rejects_negative_degrees(self):
        with pytest.raises(ValueError):
            configuration_model([1, -2])


class TestPlantedPartition:
    def test_intra_community_bias(self):
        g = planted_partition(600, 6000, num_communities=6, p_intra=0.95, seed=1)
        # With strong intra bias, a vertex's neighbors cluster: compare
        # against the uniform expectation of 1/6 within-community edges.
        # Reconstruct communities from the generator's own RNG stream.
        rng = np.random.default_rng(1)
        community = rng.integers(0, 6, 600)
        src, dst = g.edges
        intra = (community[src] == community[dst]).mean()
        assert intra > 0.5

    def test_invalid_p_intra(self):
        with pytest.raises(ValueError):
            planted_partition(100, 100, 4, p_intra=1.5)


class TestLocalityPowerLaw:
    def test_edges_are_mostly_short_range(self):
        g = locality_power_law(2000, 6.0, rewire_p=0.05, seed=0)
        src, dst = g.edges
        dist = np.minimum(np.abs(src - dst), 2000 - np.abs(src - dst))
        assert np.median(dist) < 100

    def test_rewire_fraction_goes_long(self):
        near = locality_power_law(2000, 6.0, rewire_p=0.0, seed=0)
        far = locality_power_law(2000, 6.0, rewire_p=0.9, seed=0)
        def median_dist(g):
            src, dst = g.edges
            return np.median(np.minimum(np.abs(src - dst), 2000 - np.abs(src - dst)))
        assert median_dist(far) > 3 * median_dist(near)


class TestFixedShapes:
    def test_grid_graph_degree_structure(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        # corner vertices have (out-)degree 2, interior 4
        assert g.out_degree().min() == 2
        assert g.out_degree().max() == 4

    def test_grid_symmetric(self):
        g = grid_graph(3, 3)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_star_graph_out(self):
        g = star_graph(5)
        assert g.num_vertices == 6
        assert g.out_degree()[0] == 5
        assert (g.in_degree()[1:] == 1).all()

    def test_star_graph_in(self):
        g = star_graph(5, directed_out=False)
        assert g.in_degree()[0] == 5
