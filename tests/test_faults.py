"""Units for the fault layer: specs, logs, injector, repair, peaks."""

import numpy as np
import pytest

from repro.core import CommRelation, SPSTPlanner
from repro.faults import (
    DeviceCrash,
    DeviceStall,
    FaultInjector,
    FaultLog,
    FaultPlan,
    FaultSpecError,
    FlagDelay,
    FlagDrop,
    FlagDuplicate,
    LinkDegrade,
    LinkFlap,
    LinkLoss,
    NetworkPartition,
    UnrecoverableFaultError,
    alternate_path,
    filter_topology,
    repair_plan,
)
from repro.graph.generators import rmat
from repro.partition import partition
from repro.simulator.devices import DeviceMemory
from repro.topology import dgx1


@pytest.fixture(scope="module")
def workload():
    g = rmat(150, 900, seed=4)
    r = partition(g, 8, seed=0)
    rel = CommRelation(g, r.assignment, 8)
    plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
    return g, rel, plan


def used_connection(plan) -> str:
    route = next(r for r in plan.routes if r.edges)
    return route.edges[0][0].connections[0].name


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceStall(device=0, time=0.0, duration=0.0)
        with pytest.raises(ValueError):
            LinkDegrade(connection="x", time=0.0, factor=1.5)
        with pytest.raises(ValueError):
            FlagDrop(kind="nope", device=0, stage=0)
        with pytest.raises(ValueError):
            FlagDelay(kind="ready", device=0, stage=0, delay=-1.0)
        with pytest.raises(TypeError):
            FaultPlan([object()])

    def test_empty_and_queries(self):
        plan = FaultPlan()
        assert plan.is_empty and len(plan) == 0
        plan = FaultPlan([
            DeviceCrash(device=3, time=1e-6),
            LinkLoss(connection="c", time=2e-6),
        ])
        assert not plan.is_empty
        assert plan.crashed_devices == [3]
        assert len(plan.of_type(LinkLoss)) == 1

    def test_random_is_seed_deterministic(self):
        kwargs = dict(
            horizon=1e-5,
            devices=list(range(8)),
            connections=["a", "b"],
            stall_rate=2.0,
            crash_rate=1.0,
            degrade_rate=2.0,
            drop_rate=2.0,
        )
        a = FaultPlan.random(seed=5, **kwargs)
        b = FaultPlan.random(seed=5, **kwargs)
        c = FaultPlan.random(seed=6, **kwargs)
        assert a.events == b.events
        assert a.events != c.events

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            [
                DeviceStall(device=1, time=1e-6, duration=2e-6),
                LinkDegrade(connection="qpi:m0:0->1", time=0.5e-6, factor=0.3),
                LinkFlap(connection="nv", time=1e-6, period=1e-7, count=3),
                FlagDrop(kind="done", device=0, stage=1, peer=2, count=2),
            ],
            seed=11,
        )
        path = tmp_path / "faults.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.events == plan.events
        assert loaded.seed == 11


class TestFaultSpecErrors:
    """Satellite 1: loading a fault spec fails with *typed*, precise errors."""

    def test_error_is_a_value_error(self):
        assert issubclass(FaultSpecError, ValueError)

    def test_unknown_kind(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind 'bit-rot'"):
            FaultPlan.from_json('{"events": [{"type": "bit-rot"}]}')

    def test_bad_device_id(self):
        with pytest.raises(FaultSpecError, match="bad device id"):
            FaultPlan.from_json(
                '{"events": [{"type": "device-crash", "device": -3, "time": 0.0}]}'
            )

    def test_negative_time(self):
        with pytest.raises(FaultSpecError, match="negative time"):
            FaultPlan.from_json(
                '{"events": [{"type": "device-crash", "device": 0, "time": -1.0}]}'
            )

    def test_misspelled_field_names_the_schema(self):
        with pytest.raises(FaultSpecError, match="devcie"):
            FaultPlan.from_json(
                '{"events": [{"type": "device-crash", "devcie": 0, "time": 0.0}]}'
            )

    def test_missing_field(self):
        with pytest.raises(FaultSpecError, match="event #0"):
            FaultPlan.from_json('{"events": [{"type": "device-crash"}]}')

    def test_malformed_json_and_shapes(self):
        with pytest.raises(FaultSpecError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultSpecError):
            FaultPlan.from_json('[1, 2]')
        with pytest.raises(FaultSpecError, match="must be a list"):
            FaultPlan.from_json('{"events": 7}')
        with pytest.raises(FaultSpecError, match="event #0"):
            FaultPlan.from_json('{"events": ["crash"]}')

    def test_error_prefix_carries_event_index(self):
        text = (
            '{"events": ['
            '{"type": "device-stall", "device": 0, "time": 0.0, "duration": 1e-6},'
            '{"type": "link-degrade", "connection": "c", "time": 0.0, "factor": 2.0}'
            ']}'
        )
        with pytest.raises(FaultSpecError, match=r"event #1 \(link-degrade\)"):
            FaultPlan.from_json(text)


class TestNewFaultKinds:
    def test_partition_validation(self):
        with pytest.raises(FaultSpecError):
            NetworkPartition(connections=(), time=0.0)
        with pytest.raises(FaultSpecError):
            NetworkPartition(connections=("a", ""), time=0.0)
        with pytest.raises(FaultSpecError):
            NetworkPartition(connections=("a",), time=0.0, duration=0.0)
        ev = NetworkPartition(connections=["b", "a"], time=1e-6, duration=1e-6)
        assert ev.connections == ("b", "a")  # list coerced, order kept

    def test_duplicate_validation(self):
        with pytest.raises(FaultSpecError):
            FlagDuplicate(kind="nope", device=0, stage=0)
        with pytest.raises(FaultSpecError):
            FlagDuplicate(kind="ready", device=0, stage=0, copies=0)
        with pytest.raises(FaultSpecError):
            FlagDuplicate(kind="ready", device=0, stage=0, jitter=-1.0)
        with pytest.raises(FaultSpecError):
            FlagDuplicate(kind="done", device=0, peer=1, stage=0, count=0)

    def test_new_kinds_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            [
                NetworkPartition(connections=("a", "b"), time=1e-6, duration=2e-6),
                FlagDuplicate(kind="done", device=0, peer=3, stage=1,
                              copies=2, jitter=1e-7, count=2),
            ],
            seed=9,
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.events == plan.events and loaded.seed == 9

    def test_partition_drives_capacity_timeline(self):
        inj = FaultInjector(FaultPlan([
            NetworkPartition(connections=("a", "b"), time=1e-6, duration=1e-6)
        ]))
        assert inj.dead_connections(0.5e-6) == []
        assert inj.dead_connections(1.5e-6) == ["a", "b"]
        assert inj.dead_connections(2.5e-6) == []
        assert inj.next_transition_after(0.0) == pytest.approx(1e-6)
        assert inj.next_transition_after(1.5e-6) == pytest.approx(2e-6)
        assert inj.next_transition_after(3e-6) is None

    def test_duplicate_budget_in_filter(self):
        inj = FaultInjector(FaultPlan([
            FlagDuplicate(kind="ready", device=0, stage=0,
                          copies=2, jitter=5e-7, count=1)
        ]))
        assert inj.filter_flag("ready", 0, None, 0, 0.0) == ("duplicate", 2, 5e-7)
        assert inj.filter_flag("ready", 0, None, 0, 0.0) == "deliver"
        inj.reset()
        assert inj.filter_flag("ready", 0, None, 0, 0.0) == ("duplicate", 2, 5e-7)

    def test_drop_takes_precedence_over_duplicate(self):
        inj = FaultInjector(FaultPlan([
            FlagDrop(kind="ready", device=0, stage=0, count=1),
            FlagDuplicate(kind="ready", device=0, stage=0, count=1),
        ]))
        assert inj.filter_flag("ready", 0, None, 0, 0.0) == "drop"
        verdict = inj.filter_flag("ready", 0, None, 0, 0.0)
        assert verdict[0] == "duplicate"


class TestFaultLog:
    def test_append_and_views(self):
        log = FaultLog()
        assert log.is_empty
        log.append(1e-6, "link", "inject", "c0", "dead")
        log.append(2e-6, "link", "repair", "c0")
        assert len(log) == 2 and not log.is_empty
        assert [r.subject for r in log.by_action("repair")] == ["c0"]
        assert log.counts() == {"inject": 1, "repair": 1}
        assert log.policy_counts() == {"retry": 0, "repair": 1, "degrade": 0}
        assert len(log.signature()) == 2
        assert "2 records" in log.summary()

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultLog().append(0.0, "link", "explode", "c0")


class TestFaultInjector:
    def test_unarmed_when_plan_empty(self):
        assert not FaultInjector().is_armed
        assert FaultInjector(FaultPlan()).capacity_fn_at(0.0) is None

    def test_link_timeline(self):
        plan = FaultPlan([
            LinkDegrade(connection="a", time=1.0, factor=0.5, duration=2.0),
            LinkLoss(connection="b", time=2.0),
            LinkFlap(connection="c", time=5.0, period=1.0, count=1),
        ])
        inj = FaultInjector(plan)
        assert inj.scales_at(0.5) == {}
        assert inj.scales_at(1.5) == {"a": 0.5}
        assert inj.degraded_connections(1.5) == {"a": 0.5}
        assert inj.dead_connections(2.5) == ["b"]
        assert inj.scales_at(3.5) == {"b": 0.0}  # "a" healed
        assert inj.dead_connections(5.5) == ["b", "c"]
        assert inj.dead_connections(6.5) == ["b"]  # "c" flapped back

    def test_capacity_fn(self):
        class Conn:
            name = "a"
            bytes_per_second = 100.0

        inj = FaultInjector(FaultPlan([
            LinkDegrade(connection="a", time=0.0, factor=0.25)
        ]))
        fn = inj.capacity_fn_at(1.0)
        assert fn(Conn()) == pytest.approx(25.0)

    def test_flag_drop_budget_and_refetch(self):
        inj = FaultInjector(FaultPlan([
            FlagDrop(kind="ready", device=2, stage=0, count=1)
        ]))
        assert inj.filter_flag("ready", 2, None, 0, 0.0) == "drop"
        assert inj.filter_flag("ready", 2, None, 0, 0.0) == "deliver"
        # the dropped increment is held for the first re-fetch
        assert inj.refetch_flag("ready", 2, None, 0, 0.0) == "recovered"
        assert inj.refetch_flag("ready", 2, None, 0, 0.0) == "absent"

    def test_refetch_can_burn_budget(self):
        inj = FaultInjector(FaultPlan([
            FlagDrop(kind="done", device=0, stage=0, peer=1, count=2)
        ]))
        assert inj.filter_flag("done", 0, 1, 0, 0.0) == "drop"
        assert inj.refetch_flag("done", 0, 1, 0, 0.0) == "dropped"
        assert inj.refetch_flag("done", 0, 1, 0, 0.0) == "recovered"

    def test_device_plane(self):
        plan = FaultPlan([
            DeviceCrash(device=3, time=4e-6),
            DeviceStall(device=1, time=1e-6, duration=2e-6),
        ])
        inj = FaultInjector(plan)
        assert inj.crash_time(3) == pytest.approx(4e-6)
        assert inj.crash_time(0) is None
        assert not inj.is_crashed(3)
        inj.crash_event(3).trigger()
        assert inj.is_crashed(3)
        assert inj.stall_remaining(1, 2e-6) == pytest.approx(1e-6)
        assert inj.stall_remaining(1, 5e-6) == 0.0

    def test_reset_restores_budgets(self):
        inj = FaultInjector(FaultPlan([
            FlagDrop(kind="ready", device=0, stage=0, count=1)
        ]))
        assert inj.filter_flag("ready", 0, None, 0, 0.0) == "drop"
        inj.reset()
        assert inj.filter_flag("ready", 0, None, 0, 0.0) == "drop"


class TestRepair:
    def test_filter_topology_removes_dead_wires(self, workload):
        _, _, plan = workload
        name = used_connection(plan)
        topo = plan.topology
        filtered = filter_topology(topo, dead_connections=[name])
        assert filtered.num_devices == topo.num_devices
        remaining = {
            c.name for link in filtered.links for c in link.connections
        }
        assert name not in remaining

    def test_repair_reroutes_broken_routes(self, workload):
        _, _, plan = workload
        name = used_connection(plan)
        result = repair_plan(plan, dead_connections=[name])
        assert result.touched > 0
        assert result.untouched_routes + result.touched == len(plan.routes)
        repaired_conns = {
            c.name
            for route in result.plan.routes
            for link, _ in route.edges
            for c in link.connections
        }
        assert name not in repaired_conns

    def test_repair_noop_without_faults(self, workload):
        _, _, plan = workload
        result = repair_plan(plan)
        assert result.plan is plan and result.touched == 0

    def test_dead_endpoint_is_unrecoverable(self, workload):
        _, _, plan = workload
        with pytest.raises(UnrecoverableFaultError):
            repair_plan(plan, dead_devices=[plan.routes[0].source])

    def test_alternate_path(self):
        topo = dgx1()
        direct = alternate_path(topo, 0, 1)
        assert direct is not None and len(direct) >= 1
        # kill every direct wire between 0 and 1: the path must detour
        avoid = {
            c.name
            for link in topo.links
            if {link.src, link.dst} == {0, 1}
            for c in link.connections
        }
        detour = alternate_path(topo, 0, 1, avoid=sorted(avoid))
        assert detour is not None
        assert not any(c.name in avoid for c in detour)

    # -- satellite 3: simultaneous multi-link failures -----------------
    def test_repair_survives_two_dead_wires_same_stage(self, workload):
        _, rel, plan = workload
        used = []
        for route in plan.routes:
            for link, stage in route.edges:
                if stage == 0:
                    for c in link.connections:
                        if c.name not in used:
                            used.append(c.name)
        assert len(used) >= 2, "workload must traffic two stage-0 wires"
        dead = used[:2]
        result = repair_plan(plan, dead_connections=dead)
        assert result.touched >= 1
        assert result.untouched_routes + result.touched == len(plan.routes)
        surviving = {
            c.name
            for route in result.plan.routes
            for link, _ in route.edges
            for c in link.connections
        }
        assert not set(dead) & surviving
        result.plan.validate(rel)  # still delivers every vertex class

    def test_alternate_path_avoids_dead_and_degraded_wires(self):
        topo = dgx1()
        dead = {
            c.name
            for link in topo.links
            if {link.src, link.dst} == {0, 1}
            for c in link.connections
            if c.name.startswith("nv")
        }
        crawling = {
            c.name
            for link in topo.links
            if 2 in (link.src, link.dst)
            for c in link.connections
            if c.name.startswith("nv")
        }

        def capacity_of(conn):
            if conn.name in crawling:
                return 1.0  # a degraded survivor: alive but useless
            return conn.bytes_per_second

        path = alternate_path(topo, 0, 1, capacity_of=capacity_of,
                              avoid=sorted(dead))
        assert path is not None
        names = {c.name for c in path}
        assert not names & dead
        assert not names & crawling

    def test_host_staging_engages_when_every_gpu_route_dies(self):
        topo = dgx1()
        # NVLink down and the QPI socket bridge down: 0 and 4 sit on
        # different sockets, so no GPU-to-GPU route survives at all —
        # only host memory (shared across sockets) still connects them.
        dead = sorted(
            c for c in topo.connections
            if c.startswith("nv") or c.startswith("qpi")
        )
        path = alternate_path(topo, 0, 4, avoid=dead)
        assert path is not None
        staging = tuple(topo.host_write_path(0)) + tuple(topo.host_read_path(4))
        assert tuple(c.name for c in path) == tuple(c.name for c in staging)


class TestDeviceMemoryPeaks:
    def test_peak_survives_frees(self):
        mem = DeviceMemory(0, 1000)
        mem.allocate("a", 400)
        mem.allocate("b", 300)
        assert mem.peak_bytes == 700
        mem.free("b")
        assert mem.in_use == 400
        assert mem.peak_bytes == 700  # high-water mark, not current use
        mem.allocate("c", 100)
        assert mem.peak_bytes == 700

    def test_per_name_tracking(self):
        mem = DeviceMemory(0, 1000)
        mem.allocate("buf", 200)
        mem.free("buf")
        mem.allocate("buf", 150)
        assert mem.peak_tracking["buf"] == 200  # freed names keep peaks
        mem.free("buf")
        mem.allocate("buf", 500)
        assert mem.peak_tracking["buf"] == 500

    def test_reset_clears_peaks(self):
        mem = DeviceMemory(0, 1000)
        mem.allocate("a", 800)
        mem.reset()
        assert mem.peak_bytes == 0
        assert mem.peak_tracking == {}
        assert mem.in_use == 0
