"""Tests for automatic communication method selection (§6.2)."""

import pytest

from repro.comm.methods import (
    CommMethod,
    MethodProfile,
    MethodTable,
    method_profile,
    select_method,
)
from repro.core import CommRelation, SPSTPlanner
from repro.graph.generators import rmat
from repro.partition import partition
from repro.simulator.executor import PlanExecutor
from repro.topology import dgx1, dual_dgx1


class TestSelection:
    def test_same_socket_uses_virtual_memory(self):
        topo = dgx1()
        assert select_method(topo, 0, 1) == CommMethod.CUDA_VIRTUAL_MEMORY
        assert select_method(topo, 2, 3) == CommMethod.CUDA_VIRTUAL_MEMORY

    def test_cross_socket_uses_pinned_memory(self):
        topo = dgx1()
        assert select_method(topo, 0, 5) == CommMethod.PINNED_HOST_MEMORY

    def test_cross_machine_uses_nic_helper(self):
        topo = dual_dgx1()
        assert select_method(topo, 0, 12) == CommMethod.NIC_HELPER

    def test_automatic_choice_is_the_best_profile(self):
        """§6.2's point: for every pair class, the picked mechanism has
        the highest efficiency of the available ones."""
        topo = dual_dgx1()
        for a, b in [(0, 1), (0, 5), (0, 12)]:
            auto = method_profile(topo, a, b)
            assert auto.efficiency == 1.0
            for method in CommMethod:
                try:
                    other = method_profile(topo, a, b, method)
                except ValueError:
                    continue
                assert other.efficiency <= auto.efficiency

    def test_virtual_memory_rejected_across_machines(self):
        topo = dual_dgx1()
        with pytest.raises(ValueError):
            method_profile(topo, 0, 12, CommMethod.CUDA_VIRTUAL_MEMORY)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            MethodProfile(CommMethod.NIC_HELPER, 1.0, 0.0)
        with pytest.raises(ValueError):
            MethodProfile(CommMethod.NIC_HELPER, 0.5, 1.0)


class TestMethodTable:
    def test_summary_counts_all_pairs(self):
        table = MethodTable(dgx1())
        assert sum(table.summary().values()) == 8 * 7

    def test_forced_method_falls_back_when_impossible(self):
        table = MethodTable(dual_dgx1(), force=CommMethod.CUDA_VIRTUAL_MEMORY)
        # cross-machine pair cannot use virtual memory: falls back
        assert table.profile(0, 12).method == CommMethod.NIC_HELPER
        # same-socket keeps the forced (and optimal) mechanism
        assert table.profile(0, 1).method == CommMethod.CUDA_VIRTUAL_MEMORY

    def test_forced_pinned_hurts_same_socket(self):
        auto = MethodTable(dgx1())
        forced = MethodTable(dgx1(), force=CommMethod.PINNED_HOST_MEMORY)
        assert forced.profile(0, 1).efficiency < auto.profile(0, 1).efficiency


class TestExecutorIntegration:
    @pytest.fixture(scope="class")
    def planned(self):
        graph = rmat(250, 1800, seed=4)
        r = partition(graph, 8, seed=0)
        rel = CommRelation(graph, r.assignment, 8)
        topo = dgx1()
        return topo, SPSTPlanner(topo, seed=0).plan(rel)

    def test_auto_methods_match_ideal_closely(self, planned):
        """Automatic selection runs near the ideal-transfer model: every
        pair uses its efficiency-1.0 mechanism, paying only setup."""
        topo, plan = planned
        ideal = PlanExecutor(topo).execute(plan, 1024).total_time
        auto = PlanExecutor(topo, methods=MethodTable(topo)).execute(
            plan, 1024
        ).total_time
        assert auto >= ideal
        assert auto < 1.3 * ideal

    def test_wrong_method_everywhere_is_slower(self, planned):
        topo, plan = planned
        auto = PlanExecutor(topo, methods=MethodTable(topo)).execute(
            plan, 1024
        ).total_time
        forced = PlanExecutor(
            topo, methods=MethodTable(topo, force=CommMethod.NIC_HELPER)
        ).execute(plan, 1024).total_time
        assert forced > 1.5 * auto
