"""Tests for multilevel, hierarchical partitioning and replication."""

import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.generators import grid_graph, planted_partition
from repro.partition import (
    edge_cut,
    hierarchical_partition,
    partition,
    replication_closure,
    replication_factor,
)
from repro.partition.hierarchical import partition_tree, recursive_partition
from repro.partition.replication import (
    machine_replication,
    machine_replication_factor,
)
from repro.topology import dgx1, dual_dgx1, single_device

from tests.conftest import assert_valid_assignment


class TestMultilevel:
    def test_covers_all_vertices(self, community_graph):
        r = partition(community_graph, 4, seed=0)
        assert_valid_assignment(r.assignment, community_graph.num_vertices, 4)
        assert set(np.unique(r.assignment)) == {0, 1, 2, 3}

    def test_respects_balance(self, community_graph):
        r = partition(community_graph, 4, seed=0, balance_factor=1.05)
        sizes = r.part_sizes()
        assert sizes.max() <= 1.08 * community_graph.num_vertices / 4

    def test_beats_random_cut(self, community_graph):
        r = partition(community_graph, 4, seed=0)
        rng = np.random.default_rng(0)
        random_cut = edge_cut(
            community_graph,
            rng.integers(0, 4, community_graph.num_vertices),
        )
        assert r.edge_cut < 0.6 * random_cut

    def test_grid_cut_is_low(self):
        g = grid_graph(16, 16)
        r = partition(g, 4, seed=0)
        # 4-way split of a 16x16 torus-less grid: ideal ~32 undirected
        # cut edges (64 directed); accept anything below 3x ideal.
        assert r.edge_cut <= 192

    def test_single_part(self, small_graph):
        r = partition(small_graph, 1)
        assert r.edge_cut == 0
        assert (r.assignment == 0).all()

    def test_deterministic(self, community_graph):
        a = partition(community_graph, 4, seed=3)
        b = partition(community_graph, 4, seed=3)
        assert np.array_equal(a.assignment, b.assignment)

    def test_more_parts_than_vertices_rejected(self):
        g = Graph([0], [1], 2)
        with pytest.raises(ValueError):
            partition(g, 5)

    def test_zero_parts_rejected(self, small_graph):
        with pytest.raises(ValueError):
            partition(small_graph, 0)

    def test_edge_cut_function(self):
        g = Graph([0, 1, 2], [1, 2, 0], 3)
        assert edge_cut(g, np.array([0, 0, 0])) == 0
        assert edge_cut(g, np.array([0, 1, 1])) == 2  # 0->1 and 2->0

    def test_disconnected_graph(self):
        # two disjoint triangles: a clean 2-way split exists
        g = Graph([0, 1, 2, 3, 4, 5], [1, 2, 0, 4, 5, 3], 6)
        r = partition(g, 2, seed=0)
        assert r.edge_cut == 0


class TestHierarchical:
    def test_partition_tree_collapses_single_levels(self):
        tree = partition_tree(single_device())
        assert tree == 0

    def test_partition_tree_dgx1(self):
        tree = partition_tree(dgx1())
        # two sockets of four devices each
        assert tree == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_partition_tree_dual(self):
        tree = partition_tree(dual_dgx1())
        assert len(tree) == 2  # machines
        assert tree[0] == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_assignment_valid(self, community_graph):
        r = hierarchical_partition(community_graph, dgx1(), seed=0)
        assert_valid_assignment(r.assignment, community_graph.num_vertices, 8)
        assert r.num_parts == 8

    def test_machine_cut_below_flat_gpu_cut(self, community_graph):
        """Hierarchical cuts prioritise the machine boundary."""
        topo = dual_dgx1()
        r = hierarchical_partition(community_graph, topo, seed=0)
        machine = np.asarray(topo.machine_of)[r.assignment]
        src, dst = community_graph.edges
        machine_cut = int((machine[src] != machine[dst]).sum())
        # The machine boundary is one bisection; it must cut far fewer
        # edges than the full 16-way partition does.
        assert machine_cut < r.edge_cut

    def test_single_device_trivial(self, small_graph):
        r = hierarchical_partition(small_graph, single_device())
        assert (r.assignment == 0).all()

    def test_recursive_partition_leaf(self, small_graph):
        out = recursive_partition(small_graph, 3)
        assert (out == 3).all()

    def test_recursive_partition_flat_list(self, community_graph):
        out = recursive_partition(community_graph, [2, 5, 7])
        assert set(np.unique(out)) <= {2, 5, 7}


class TestReplication:
    def test_closure_contains_local(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        closures = replication_closure(small_graph, r.assignment, 2)
        for p, closure in enumerate(closures):
            local = np.flatnonzero(r.assignment == p)
            assert np.isin(local, closure).all()

    def test_zero_hops_factor_is_one(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        assert replication_factor(small_graph, r.assignment, 0) == pytest.approx(1.0)

    def test_factor_monotone_in_hops(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        factors = [
            replication_factor(small_graph, r.assignment, h) for h in range(4)
        ]
        assert factors == sorted(factors)

    def test_factor_bounded_by_parts(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        assert replication_factor(small_graph, r.assignment, 3) <= 4.0

    def test_closure_matches_khop_semantics(self, tiny_graph):
        assignment = np.array([0, 0, 0, 1, 1, 1])
        closures = replication_closure(tiny_graph, assignment, 1)
        # part 1 holds {3,4,5}; in-neighbors add {1, 2}
        assert closures[1].tolist() == [1, 2, 3, 4, 5]

    def test_machine_replication(self, small_graph):
        topo = dual_dgx1()
        r = hierarchical_partition(small_graph, topo, seed=0)
        closures = machine_replication(small_graph, r.assignment, topo, 2)
        assert len(closures) == 2
        factor = machine_replication_factor(small_graph, r.assignment, topo, 2)
        assert 1.0 <= factor <= 2.0


class TestPartitionMetrics:
    def test_metrics_consistent_with_relation(self, small_graph):
        from repro.core import CommRelation
        from repro.partition import evaluate_partition

        r = partition(small_graph, 4, seed=0)
        metrics = evaluate_partition(small_graph, r.assignment)
        rel = CommRelation(small_graph, r.assignment, 4)
        for d in range(4):
            assert metrics.remote_rows[d] == rel.remote_vertices[d].size
        assert metrics.send_rows.sum() == rel.total_volume_vertices()
        assert metrics.edge_cut == r.edge_cut

    def test_hierarchy_cuts(self, community_graph):
        from repro.partition import evaluate_partition

        topo = dual_dgx1()
        r = hierarchical_partition(community_graph, topo, seed=0)
        metrics = evaluate_partition(community_graph, r.assignment, topo)
        assert 0 < metrics.machine_cut < metrics.edge_cut
        assert metrics.socket_cut > 0
        assert metrics.machine_cut + metrics.socket_cut <= metrics.edge_cut

    def test_replication_option(self, small_graph):
        from repro.partition import evaluate_partition

        r = partition(small_graph, 4, seed=0)
        metrics = evaluate_partition(small_graph, r.assignment,
                                     with_replication=True)
        assert 1.0 <= metrics.replication_factor_2hop <= 4.0

    def test_summary_renders(self, small_graph):
        from repro.partition import evaluate_partition

        r = partition(small_graph, 4, seed=0)
        text = evaluate_partition(small_graph, r.assignment).summary()
        assert "edge cut" in text and "imbalance" in text

    def test_rejects_wrong_length(self, small_graph):
        from repro.partition import evaluate_partition

        with pytest.raises(ValueError):
            evaluate_partition(small_graph, np.zeros(3, dtype=np.int64))


class TestUnequalGroups:
    def test_recursive_partition_unequal_machines(self):
        """A 2-device machine plus a 6-device machine: the top-level
        split must weight children by their device counts."""
        from repro.topology.topology import TopologyBuilder
        from repro.topology import LinkKind
        from repro.partition.hierarchical import (
            hierarchical_partition,
            partition_tree,
        )
        from repro.graph.generators import planted_partition

        b = TopologyBuilder("lopsided")
        for machine, count in ((0, 2), (1, 6)):
            base = len([None for _ in range(machine * 2)])
            for i in range(count):
                b.add_device(machine=machine, socket=0)
        devices = list(range(8))
        for i in devices:
            for j in devices:
                if i < j:
                    b.add_duplex_link(i, j, LinkKind.NV1, name=f"l{i}-{j}")
        topo = b.build()

        tree = partition_tree(topo)
        assert tree == [[0, 1], [2, 3, 4, 5, 6, 7]]

        g = planted_partition(400, 3200, num_communities=8, p_intra=0.9,
                              seed=5)
        result = hierarchical_partition(g, topo, seed=0)
        sizes = np.bincount(result.assignment, minlength=8)
        assert (sizes > 0).all()
        # machine 1 holds ~3x machine 0's vertices (6 devices vs 2)
        m0 = sizes[:2].sum()
        m1 = sizes[2:].sum()
        assert 1.5 < m1 / m0 < 6.0
