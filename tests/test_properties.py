"""Property-based tests (hypothesis) on core invariants.

These target the structures whose correctness everything else rests on:
the CSR graph, the segment reductions, the partitioner, the cost model,
the SPST planner and the functional allgather.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.allgather import CompiledAllgather
from repro.core import CommRelation, SPSTPlanner, StagedCostModel
from repro.faults import (
    DeviceCrash,
    DeviceStall,
    FaultPlan,
    FlagDelay,
    FlagDrop,
    FlagDuplicate,
    LinkDegrade,
    LinkFlap,
    LinkLoss,
    NetworkPartition,
)
from repro.gnn.functional import segment_sum, softmax_cross_entropy
from repro.graph.csr import Graph
from repro.partition import partition
from repro.simulator.network import Flow, NetworkSimulator
from repro.topology import LinkKind, dgx1, fully_connected
from repro.topology.links import PhysicalConnection


@st.composite
def random_graph(draw, max_vertices=40, max_edges=150):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return Graph(np.asarray(src, dtype=np.int64),
                 np.asarray(dst, dtype=np.int64), n,
                 drop_self_loops=True)


class TestGraphProperties:
    @given(random_graph())
    @settings(max_examples=40, deadline=None)
    def test_csr_roundtrip(self, g):
        """Every edge appears exactly once in each CSR direction."""
        src, dst = g.edges
        out_pairs = sorted(
            (int(u), int(v))
            for u in range(g.num_vertices)
            for v in g.out_neighbors(u)
        )
        in_pairs = sorted(
            (int(u), int(v))
            for v in range(g.num_vertices)
            for u in g.in_neighbors(v)
        )
        edge_pairs = sorted(zip(src.tolist(), dst.tolist()))
        assert out_pairs == edge_pairs == in_pairs

    @given(random_graph())
    @settings(max_examples=30, deadline=None)
    def test_undirected_contains_original(self, g):
        u = g.undirected()
        src, dst = g.edges
        for a, b in list(zip(src.tolist(), dst.tolist()))[:30]:
            assert u.has_edge(a, b) and u.has_edge(b, a)

    @given(random_graph(), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_khop_closure_is_closed(self, g, hops):
        seeds = np.array([0], dtype=np.int64)
        closure = g.k_hop_in_neighborhood(seeds, hops)
        if hops >= g.num_vertices:
            return
        # the closure of the closure at 0 extra hops is itself
        again = g.k_hop_in_neighborhood(closure, 0)
        assert np.array_equal(again, closure)


class TestSegmentSumProperties:
    @given(
        st.lists(st.integers(0, 6), min_size=1, max_size=20),
        st.integers(1, 5),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_python_loop(self, seg_sizes, dim, rnd):
        indptr = np.zeros(len(seg_sizes) + 1, dtype=np.int64)
        np.cumsum(seg_sizes, out=indptr[1:])
        total = int(indptr[-1])
        rng = np.random.default_rng(rnd.randint(0, 10**6))
        values = rng.standard_normal((total, dim))
        fast = segment_sum(values, indptr)
        for i, size in enumerate(seg_sizes):
            expected = values[indptr[i]: indptr[i + 1]].sum(axis=0) if size else 0
            assert np.allclose(fast[i], expected, atol=1e-9)


class TestPartitionProperties:
    @given(random_graph(max_vertices=60, max_edges=300),
           st.integers(2, 5), st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_partition_valid_and_balanced(self, g, parts, seed):
        if parts > g.num_vertices:
            return
        r = partition(g, parts, seed=seed)
        assert r.assignment.shape == (g.num_vertices,)
        assert 0 <= r.assignment.min() and r.assignment.max() < parts
        sizes = r.part_sizes()
        # every vertex assigned exactly once
        assert sizes.sum() == g.num_vertices


class TestCostModelProperties:
    @given(st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7),
                  st.integers(0, 6), st.floats(0.1, 100)),
        min_size=1, max_size=30,
    ))
    @settings(max_examples=30, deadline=None)
    def test_incremental_matches_actual(self, transfers):
        topo = dgx1()
        model = StagedCostModel(topo)
        for a, b, stage, units in transfers:
            if a == b:
                continue
            link = topo.direct_link(a, b)
            predicted = model.incremental_cost(link, stage, units)
            before = model.total_cost()
            model.add(link, stage, units)
            after = model.total_cost()
            assert after - before == pytest.approx(predicted, rel=1e-9, abs=1e-18)

    @given(st.floats(0.5, 50))
    @settings(max_examples=10, deadline=None)
    def test_cost_scales_linearly_with_units(self, factor):
        topo = dgx1()
        a, b = StagedCostModel(topo), StagedCostModel(topo)
        for (x, y, s) in [(0, 1, 0), (1, 5, 1), (0, 5, 0), (3, 7, 2)]:
            link = topo.direct_link(x, y)
            a.add(link, s, 10.0)
            b.add(link, s, 10.0 * factor)
        assert b.total_cost() == pytest.approx(factor * a.total_cost())


class TestPlannerProperties:
    @given(random_graph(max_vertices=30, max_edges=120),
           st.integers(2, 8), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_spst_plan_always_valid(self, g, devices, seed):
        if devices > g.num_vertices:
            return
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, devices, g.num_vertices)
        rel = CommRelation(g, assignment, devices)
        plan = SPSTPlanner(dgx1(8), seed=seed).plan(rel)
        plan.validate(rel)

    @given(random_graph(max_vertices=25, max_edges=100), st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_allgather_delivers_required_rows(self, g, seed):
        rng = np.random.default_rng(seed)
        devices = 4
        assignment = rng.integers(0, devices, g.num_vertices)
        rel = CommRelation(g, assignment, devices)
        plan = SPSTPlanner(dgx1(4), seed=seed).plan(rel)
        ag = CompiledAllgather(rel, plan)
        h = rng.standard_normal((g.num_vertices, 2)).astype(np.float32)
        blocks = [h[rel.local_vertices[d]] for d in range(devices)]
        full = ag.forward(blocks)
        for d in range(devices):
            layout = np.concatenate(
                [rel.local_vertices[d], rel.remote_vertices[d]]
            )
            assert np.array_equal(full[d], h[layout])


class TestNetworkProperties:
    @given(st.lists(st.floats(1e3, 1e9), min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_shared_link_serialises_total_bytes(self, sizes):
        """Makespan on one shared wire == total bytes / bandwidth."""
        c = PhysicalConnection("c", LinkKind.NV1, 10.0)
        sim = NetworkSimulator(alpha=0.0)
        t = sim.makespan([Flow((c,), s) for s in sizes])
        assert t == pytest.approx(sum(sizes) / 10e9, rel=1e-6)

    @given(st.lists(st.floats(1e3, 1e8), min_size=2, max_size=8),
           st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_disjoint_links_parallelise(self, sizes, dim):
        sim = NetworkSimulator(alpha=0.0)
        flows = [
            Flow((PhysicalConnection(f"c{i}", LinkKind.NV1, 10.0),), s)
            for i, s in enumerate(sizes)
        ]
        t = sim.makespan(flows)
        assert t == pytest.approx(max(sizes) / 10e9, rel=1e-6)


_times = st.floats(0.0, 1e-3, allow_nan=False, allow_infinity=False)
_durations = st.floats(1e-12, 1e-3, allow_nan=False, allow_infinity=False)
_devices = st.integers(0, 15)
_stages = st.integers(0, 3)
_conn_names = st.text("abcnvqm:->0123456789", min_size=1, max_size=12)
_flag_kinds = st.sampled_from(["ready", "done"])
_peers = st.none() | st.integers(0, 15)


@st.composite
def fault_events(draw):
    """One valid fault event of any of the nine kinds."""
    kind = draw(st.integers(0, 8))
    if kind == 0:
        return DeviceStall(device=draw(_devices), time=draw(_times),
                           duration=draw(_durations))
    if kind == 1:
        return DeviceCrash(device=draw(_devices), time=draw(_times))
    if kind == 2:
        return LinkDegrade(
            connection=draw(_conn_names), time=draw(_times),
            factor=draw(st.floats(0.01, 0.99)),
            duration=draw(st.none() | _durations),
        )
    if kind == 3:
        return LinkFlap(connection=draw(_conn_names), time=draw(_times),
                        period=draw(_durations), count=draw(st.integers(1, 5)))
    if kind == 4:
        return LinkLoss(connection=draw(_conn_names), time=draw(_times))
    if kind == 5:
        return NetworkPartition(
            connections=tuple(draw(st.lists(_conn_names, min_size=1,
                                            max_size=4))),
            time=draw(_times),
            duration=draw(st.none() | _durations),
        )
    if kind == 6:
        return FlagDrop(kind=draw(_flag_kinds), device=draw(_devices),
                        peer=draw(_peers), stage=draw(_stages),
                        count=draw(st.integers(1, 5)))
    if kind == 7:
        return FlagDelay(kind=draw(_flag_kinds), device=draw(_devices),
                         peer=draw(_peers), stage=draw(_stages),
                         delay=draw(_durations))
    return FlagDuplicate(
        kind=draw(_flag_kinds), device=draw(_devices), peer=draw(_peers),
        stage=draw(_stages), copies=draw(st.integers(1, 4)),
        jitter=draw(st.floats(0.0, 1e-3)), count=draw(st.integers(1, 4)),
    )


class TestFaultPlanProperties:
    @given(st.lists(fault_events(), max_size=12),
           st.none() | st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_save_load_roundtrip(self, tmp_path_factory, events, seed):
        """Every fault plan — all nine event kinds, any mix — survives
        the JSON file round-trip bit-for-bit, seed included."""
        plan = FaultPlan(events, seed=seed)
        path = tmp_path_factory.mktemp("plans") / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.events == plan.events
        assert loaded.seed == plan.seed

    @given(st.lists(fault_events(), max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_text_roundtrip_is_stable(self, events):
        """to_json(from_json(x)) is a fixed point after one round."""
        once = FaultPlan(events).to_json()
        again = FaultPlan.from_json(once).to_json()
        assert once == again


class TestLossProperties:
    @given(st.integers(2, 10), st.integers(1, 6), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_xent_grad_rows_sum_to_zero(self, classes, rows, seed):
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((rows, classes))
        labels = rng.integers(0, classes, rows)
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss >= 0
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-9)
