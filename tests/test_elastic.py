"""Tests for elastic device sets: planned handoffs, contention pricing,
the multi-job scheduler, session wiring, and the mixed chaos soak."""

import numpy as np
import pytest

from repro.api import DGCLSession
from repro.chaos import ElasticScheduleGenerator, SoakConfig, SoakRunner
from repro.core import CommRelation, SPSTPlanner
from repro.core.serialize import plan_to_jsonable
from repro.elastic import (
    ElasticController,
    ElasticPolicy,
    ElasticScheduler,
    ElasticSpecError,
    JobSpec,
    interference_report,
    plan_traffic,
    uniform_traffic,
    validate_disjoint,
)
from repro.faults.repair import regrow_routes, repair_plan
from repro.gnn import SingleDeviceTrainer, build_gcn
from repro.gnn.checkpoint import restore, snapshot
from repro.graph.generators import rmat
from repro.partition import hierarchical_partition, partition
from repro.simulator.executor import PlanExecutor
from repro.simulator.timeline import timeline_events
from repro.topology import dgx1


@pytest.fixture(scope="module")
def task():
    g = rmat(200, 1400, seed=4)
    rng = np.random.default_rng(0)
    features = rng.standard_normal((g.num_vertices, 6)).astype(np.float32)
    labels = rng.integers(0, 4, g.num_vertices)
    return g, features, labels


def _model():
    return build_gcn(6, 8, 4, seed=7)


def _controller(task, **kwargs):
    g, features, labels = task
    return ElasticController(g, dgx1(), _model(), features, labels, **kwargs)


class TestElasticController:
    def test_gradient_parity_across_three_transitions(self, task):
        g, features, labels = task
        trainer = _controller(task)
        report = trainer.train_with_schedule(6, [
            (1, "shrink", (6, 7)),
            (3, "shrink", (4, 5)),
            (4, "grow", (4, 5, 6, 7)),
        ])
        assert len(trainer.transitions) == 3
        reference = SingleDeviceTrainer(g, _model(), features, labels)
        ref = reference.train(6)
        assert np.allclose(ref, report.losses, rtol=1e-4)

    def test_grow_back_hits_plan_memo_equal_to_cold_plan(self, task):
        g, _, _ = task
        trainer = _controller(task)
        first_doc = plan_to_jsonable(trainer.plan)
        trainer.shrink([6, 7])
        assert sorted(trainer.devices) == list(range(6))
        trainer.grow([6, 7])
        assert trainer.transitions[-1].plan_source == "memo"
        # The memoised plan is byte-for-byte the cold plan of that set.
        assert plan_to_jsonable(trainer.plan) == first_doc
        part = hierarchical_partition(g, dgx1(), seed=trainer.seed)
        relation = CommRelation(g, part.assignment, 8)
        cold = SPSTPlanner(dgx1(), chunks_per_class=4,
                           seed=trainer.seed).plan(relation)
        assert plan_to_jsonable(trainer.plan) == plan_to_jsonable(cold)

    def test_repeated_grow_shrink_grow_cycles(self, task):
        g, features, labels = task
        trainer = _controller(task)
        trainer.train(1)
        for _ in range(2):
            trainer.shrink([7])
            trainer.train(trainer.epoch + 1)
            trainer.grow([7])
            trainer.train(trainer.epoch + 1)
        assert sorted(trainer.devices) == list(range(8))
        # Re-entered device sets come from the memo, not a re-plan.
        sources = [t.plan_source for t in trainer.transitions]
        assert sources[2:] == ["memo", "memo"]
        reference = SingleDeviceTrainer(g, _model(), features, labels)
        ref = reference.train(trainer.epoch)
        assert np.allclose(ref, trainer.losses, rtol=1e-4)

    def test_checkpoint_round_trip_integrity(self, task):
        trainer = _controller(task)
        trainer.train(2)
        trainer.shrink([6, 7])
        ckpt = trainer._checkpoint
        assert ckpt.epoch == 2 and ckpt.nbytes() > 0
        fresh = _model()
        restore(ckpt, fresh)
        again = snapshot(fresh, epoch=ckpt.epoch,
                         loss_history=ckpt.loss_history)
        assert again.nbytes() == ckpt.nbytes()
        for a, b in zip(ckpt.params, again.params):
            assert sorted(a) == sorted(b)
            for name in a:
                assert np.array_equal(a[name], b[name])

    def test_transition_pricing_and_log(self, task):
        trainer = _controller(task)
        t = trainer.shrink([6, 7])
        assert t.downtime_seconds > 0
        assert t.finish > t.start
        assert t.drain_seconds > 0
        assert t.checkpoint_seconds > 0
        assert t.bootstrap_seconds > 0
        assert trainer.clock == t.finish
        counts = trainer.log.interventions()
        assert counts["scale-in"] == 1 and counts["scale-out"] == 0
        trainer.grow([6, 7])
        counts = trainer.log.interventions()
        assert counts["scale-out"] == 1
        actions = {r.action for r in trainer.log}
        assert {"scale-in", "scale-out", "checkpoint"} <= actions

    def test_scale_records_render_as_gantt_marks(self, task):
        trainer = _controller(task)
        trainer.shrink([7])
        report = PlanExecutor(trainer.topology).execute(trainer.plan, 1024)
        events = timeline_events(report, fault_log=trainer.log)
        assert any(e.label.startswith("! scale-in") for e in events)

    def test_initial_device_subset(self, task):
        trainer = _controller(task, devices=[0, 1, 2, 3])
        assert sorted(trainer.devices) == [0, 1, 2, 3]
        assert trainer.topology.num_devices == 4
        trainer.grow([4, 5])
        assert trainer.topology.num_devices == 6

    def test_validation_errors(self, task):
        trainer = _controller(
            task, elastic=ElasticPolicy(min_devices=2, max_devices=8)
        )
        with pytest.raises(ElasticSpecError):
            trainer.grow([])
        with pytest.raises(ElasticSpecError):
            trainer.grow([3])          # already active
        with pytest.raises(ElasticSpecError):
            trainer.grow([11])         # unknown id
        with pytest.raises(ElasticSpecError):
            trainer.shrink([9])        # not active
        with pytest.raises(ElasticSpecError):
            trainer.shrink([1, 2, 3, 4, 5, 6, 7])  # below the floor

    def test_bad_initial_subset_rejected(self, task):
        with pytest.raises(ElasticSpecError):
            _controller(task, devices=[])
        with pytest.raises(ElasticSpecError):
            _controller(task, devices=[0, 1, 42])

    def test_policy_validation(self):
        with pytest.raises(ElasticSpecError):
            ElasticPolicy(min_devices=0)
        with pytest.raises(ElasticSpecError):
            ElasticPolicy(min_devices=4, max_devices=2)
        with pytest.raises(ElasticSpecError):
            ElasticPolicy(replan="sometimes")
        with pytest.raises(ElasticSpecError):
            ElasticPolicy(threshold=0.0)


class TestRepairPlanAdditions:
    def _plan(self, devices=6):
        g = rmat(150, 900, seed=13)
        topo = dgx1().restrict(list(range(devices)))
        part = partition(g, devices, seed=0)
        relation = CommRelation(g, part.assignment, devices)
        return SPSTPlanner(topo, seed=0).plan(relation), relation

    def test_expand_onto_new_devices(self):
        plan, _ = self._plan(6)
        result = repair_plan(
            plan, added_devices=(6, 7), expanded_topology=dgx1()
        )
        assert result.plan.topology.num_devices == 8
        assert result.plan.name.endswith("-expanded")
        assert len(result.plan.routes) == len(plan.routes)
        # Every surviving route must be addressable on the expansion.
        for route in result.plan.routes:
            for link, _ in route.edges:
                assert 0 <= link.src < 8 and 0 <= link.dst < 8

    def test_added_devices_need_expanded_topology(self):
        plan, _ = self._plan(6)
        with pytest.raises(ElasticSpecError):
            repair_plan(plan, added_devices=(6, 7))

    def test_expanded_topology_needs_added_devices(self):
        plan, _ = self._plan(6)
        with pytest.raises(ElasticSpecError):
            repair_plan(plan, expanded_topology=dgx1())

    def test_added_overlap_rejected(self):
        plan, _ = self._plan(6)
        with pytest.raises(ElasticSpecError):
            repair_plan(plan, added_devices=(5, 6, 7),
                        expanded_topology=dgx1())

    def test_added_must_match_expansion_tail(self):
        plan, _ = self._plan(6)
        with pytest.raises(ElasticSpecError):
            repair_plan(plan, added_devices=(6,), expanded_topology=dgx1())

    def test_regrow_rejects_unknown_endpoints(self):
        plan, _ = self._plan(6)
        small = dgx1().restrict([0, 1, 2, 3])
        with pytest.raises(ElasticSpecError):
            regrow_routes(small, [], plan.routes)

    def test_directional_loss_breaks_both_directions(self):
        """A dead wire takes its reverse out of the planning topology:
        training runs every edge backwards, so one-way links are not
        plannable (the latent backward-pass crash of mixed soaks)."""
        plan, _ = self._plan(8)
        result = repair_plan(plan, dead_connections=["qpi:m0:1->0"])
        assert result.plan.backward_tuples()  # must not raise


class TestContention:
    def test_validate_disjoint(self):
        topo = dgx1()
        ok = validate_disjoint(topo, {"a": (0, 1), "b": (2, 3)})
        assert ok == {"a": (0, 1), "b": (2, 3)}
        with pytest.raises(ElasticSpecError):
            validate_disjoint(topo, {"a": (0, 1), "b": (1, 2)})
        with pytest.raises(ElasticSpecError):
            validate_disjoint(topo, {"a": ()})
        with pytest.raises(ElasticSpecError):
            validate_disjoint(topo, {"a": (0, 99)})

    def test_single_job_is_clean(self):
        topo = dgx1()
        rep = interference_report(
            topo, [uniform_traffic(topo, "solo", range(8))]
        )
        assert rep.is_clean and rep.total == 0.0

    def test_affinity_split_is_clean_striped_is_not(self):
        topo = dgx1()
        clean = interference_report(topo, [
            uniform_traffic(topo, "a", [0, 1, 2, 3]),
            uniform_traffic(topo, "b", [4, 5, 6, 7]),
        ])
        assert clean.is_clean
        striped = interference_report(topo, [
            uniform_traffic(topo, "a", [0, 2, 4, 6]),
            uniform_traffic(topo, "b", [1, 3, 5, 7]),
        ])
        assert striped.total > 0.0
        assert any("qpi" in name for name in striped.per_connection)

    def test_plan_traffic_prices_route_weights(self):
        g = rmat(150, 900, seed=13)
        topo = dgx1().restrict([0, 1, 2, 3])
        part = partition(g, 4, seed=0)
        relation = CommRelation(g, part.assignment, 4)
        plan = SPSTPlanner(topo, seed=0).plan(relation)
        traffic = plan_traffic("a", (0, 1, 2, 3), plan)
        assert traffic.conn_units
        assert all(units > 0 for units in traffic.conn_units.values())


class TestScheduler:
    def test_aware_beats_naive_on_two_jobs(self):
        scheduler = ElasticScheduler(dgx1())
        jobs = [JobSpec("a", 4), JobSpec("b", 4)]
        aware = scheduler.place(jobs)
        naive = scheduler.naive_place(jobs)
        assert aware.interference.total == 0.0
        assert naive.interference.total > 0.0
        assert set(aware.assignments["a"]) in ({0, 1, 2, 3}, {4, 5, 6, 7})

    def test_place_validation(self):
        scheduler = ElasticScheduler(dgx1())
        with pytest.raises(ElasticSpecError):
            scheduler.place([])
        with pytest.raises(ElasticSpecError):
            scheduler.place([JobSpec("a", 5), JobSpec("a", 3)])
        with pytest.raises(ElasticSpecError):
            scheduler.place([JobSpec("a", 6), JobSpec("b", 6)])
        with pytest.raises(ElasticSpecError):
            JobSpec("bad", 0)

    def test_autoscale_emits_bounded_actions(self):
        scheduler = ElasticScheduler(dgx1())
        jobs = [JobSpec("a", 3, min_devices=2, max_devices=4),
                JobSpec("b", 3, min_devices=3)]
        placement = scheduler.place(jobs)
        actions = scheduler.autoscale(
            placement, {"a": 0.95, "b": 0.1}, jobs=jobs
        )
        by_job = {a.job: a for a in actions}
        assert by_job["a"].kind == "grow" and len(by_job["a"].devices) == 1
        assert "b" not in by_job  # floored at min_devices=3
        calm = scheduler.autoscale(placement, {"a": 0.5, "b": 0.5}, jobs=jobs)
        assert calm == []


class TestSessionElastic:
    def _session(self, **kwargs):
        sess = DGCLSession(dgx1(), **kwargs)
        g = rmat(150, 900, seed=13)
        sess.build_comm_info(g)
        return sess, g

    def test_shrink_grow_round_trip_delivers_bytes(self):
        sess, g = self._session()
        rng = np.random.default_rng(3)
        feats = rng.standard_normal((g.num_vertices, 4)).astype(np.float32)
        report = sess.shrink([6, 7])
        assert report.kind == "shrink"
        assert sess.active_devices == list(range(6))
        assert sess.topology.num_devices == 6
        blocks = sess.dispatch_features(feats)
        out = sess.graph_allgather(blocks)
        for d, lg in enumerate(sess.local_graphs()):
            assert np.array_equal(out[d], feats[lg.global_ids])
        sess.grow([6, 7])
        assert sess.active_devices == list(range(8))
        counts = sess.fault_log.interventions()
        assert counts["scale-in"] == 1 and counts["scale-out"] == 1

    def test_policy_floor_enforced(self):
        sess, _ = self._session(elastic=ElasticPolicy(min_devices=4))
        with pytest.raises(ElasticSpecError):
            sess.shrink([3, 4, 5, 6, 7])

    def test_transitions_recorded(self):
        sess, _ = self._session()
        sess.shrink([7])
        sess.grow([7])
        kinds = [t.kind for t in sess.transitions]
        assert kinds == ["shrink", "grow"]
        for t in sess.transitions:
            assert t.downtime_seconds > 0
            assert t.epoch == -1  # session transitions have no epochs


class TestChaosElastic:
    def test_schedule_generator_deterministic_and_legal(self):
        gen = ElasticScheduleGenerator(8, 5, min_devices=2, density=3.0)
        for seed in range(20):
            schedule = gen.sample(seed)
            assert schedule == gen.sample(seed)
            active = set(range(8))
            for epoch, kind, devices in schedule:
                assert 1 <= epoch < 5
                if kind == "shrink":
                    assert set(devices) <= active
                    active -= set(devices)
                else:
                    assert not set(devices) & active
                    active |= set(devices)
                assert len(active) >= 2

    def test_forbidden_devices_never_grow(self):
        gen = ElasticScheduleGenerator(8, 5, min_devices=2, forbidden=[5])
        for seed in range(20):
            for _, kind, devices in gen.sample(seed):
                if kind == "grow":
                    assert 5 not in devices

    def test_mixed_soak_seed_passes_oracles(self):
        runner = SoakRunner(SoakConfig(elastic_every=1, elastic_epochs=4))
        result = runner.run_seed(0, elastic=True)
        assert result.passed, [v.as_dict() for v in result.violations]

    def test_config_knobs_exported(self):
        knobs = SoakConfig(elastic_every=3).knobs()
        assert knobs["elastic_every"] == 3
        assert "elastic_epochs" in knobs
