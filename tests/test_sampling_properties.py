"""Property-based tests (hypothesis) on the sampling subsystem.

Three invariants the mini-batch pipeline leans on, checked over random
graphs, seeds and fanout configurations:

* the batch stream is a pure function of its seeds — same (loader
  seed, sampler seed, epoch) means bit-identical batches;
* every sampled edge exists in the parent CSR;
* frontier growth respects the fanout caps layer by layer.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.csr import Graph
from repro.sampling import KHopSampler, NeighborSampler, SeedLoader


@st.composite
def random_graph(draw, max_vertices=40, max_edges=160):
    n = draw(st.integers(min_value=4, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return Graph(np.asarray(src, dtype=np.int64),
                 np.asarray(dst, dtype=np.int64), n,
                 drop_self_loops=True)


@st.composite
def sampling_setup(draw):
    g = draw(random_graph())
    fanouts = tuple(
        draw(st.lists(st.integers(1, 5), min_size=1, max_size=3))
    )
    seed = draw(st.integers(0, 2**16))
    batch_size = draw(st.integers(1, g.num_vertices))
    return g, fanouts, seed, batch_size


def batch_signature(batch):
    """Everything a batch is, as comparable bytes."""
    s, d = batch.graph.edges
    return (
        batch.seeds.tobytes(),
        batch.vertices.tobytes(),
        s.tobytes(),
        d.tobytes(),
        tuple(f.tobytes() for f in batch.frontiers),
    )


class TestStreamDeterminism:
    @given(sampling_setup())
    @settings(max_examples=30, deadline=None)
    def test_same_seed_bit_identical_stream(self, setup):
        """Same seeds -> bit-identical batch stream, end to end."""
        g, fanouts, seed, batch_size = setup

        def stream():
            loader = SeedLoader(g, batch_size, seed=seed)
            sampler = NeighborSampler(g, fanouts, seed=seed)
            return [
                batch_signature(sampler.sample(s, i))
                for i, s in enumerate(loader.batches(0))
            ]

        assert stream() == stream()

    @given(sampling_setup())
    @settings(max_examples=20, deadline=None)
    def test_khop_deterministic(self, setup):
        g, fanouts, seed, batch_size = setup
        sampler = KHopSampler(g, hops=len(fanouts))
        seeds = np.arange(min(3, g.num_vertices))
        assert batch_signature(sampler.sample(seeds)) == batch_signature(
            sampler.sample(seeds)
        )


class TestSampledEdges:
    @given(sampling_setup())
    @settings(max_examples=30, deadline=None)
    def test_every_sampled_edge_exists_in_parent(self, setup):
        g, fanouts, seed, batch_size = setup
        src, dst = g.edges
        parent = set(zip(src.tolist(), dst.tolist()))
        sampler = NeighborSampler(g, fanouts, seed=seed)
        loader = SeedLoader(g, batch_size, seed=seed)
        for i, seeds in enumerate(loader.batches(0)):
            batch = sampler.sample(seeds, i)
            s, d = batch.graph.edges
            for u, v in zip(batch.vertices[s], batch.vertices[d]):
                assert (int(u), int(v)) in parent

    @given(sampling_setup())
    @settings(max_examples=20, deadline=None)
    def test_vertices_sorted_and_unique(self, setup):
        g, fanouts, seed, batch_size = setup
        sampler = NeighborSampler(g, fanouts, seed=seed)
        batch = sampler.sample(np.arange(min(4, g.num_vertices)))
        v = batch.vertices
        assert np.array_equal(v, np.unique(v))
        assert np.array_equal(batch.vertices[batch.seed_rows], batch.seeds)


class TestFanoutCaps:
    @given(sampling_setup())
    @settings(max_examples=30, deadline=None)
    def test_frontier_growth_respects_fanouts(self, setup):
        """|frontier_{l+1}| <= |frontier_l| * (1 + fanout_l)."""
        g, fanouts, seed, batch_size = setup
        sampler = NeighborSampler(g, fanouts, seed=seed)
        batch = sampler.sample(np.arange(min(4, g.num_vertices)))
        assert len(batch.frontiers) == len(fanouts) + 1
        for fanout, prev, cur in zip(
            fanouts, batch.frontiers, batch.frontiers[1:]
        ):
            assert cur.size <= prev.size * (1 + fanout)

    @given(sampling_setup())
    @settings(max_examples=30, deadline=None)
    def test_subgraph_in_degree_capped(self, setup):
        """A sampled vertex keeps <= min(parent degree, sum of fanouts)
        in-neighbors (each layer adds at most fanout_l per head)."""
        g, fanouts, seed, batch_size = setup
        sampler = NeighborSampler(g, fanouts, seed=seed)
        batch = sampler.sample(np.arange(min(4, g.num_vertices)))
        cap = sum(fanouts)
        sub = batch.graph
        for local, global_id in enumerate(batch.vertices):
            sampled_deg = sub.in_indptr[local + 1] - sub.in_indptr[local]
            parent_deg = (
                g.in_indptr[global_id + 1] - g.in_indptr[global_id]
            )
            assert sampled_deg <= min(parent_deg, cap)
