"""Edge cases of the hardened protocol: chaos in, correct rows out.

Every test runs the full master/client protocol with an armed
:class:`~repro.faults.injector.FaultInjector` and checks the paper's
correctness bar — gathered rows bit-identical to the compiled
allgather — plus the robustness contracts: timing invariance without
faults, typed errors on confirmed device loss and exhausted retry
budgets, and reproducible fault logs.
"""

import threading

import numpy as np
import pytest

from repro.comm.allgather import CompiledAllgather
from repro.core import CommRelation, SPSTPlanner
from repro.faults import (
    DeviceCrash,
    DeviceLostError,
    DeviceStall,
    FaultInjector,
    FaultPlan,
    FlagDrop,
    FlagDuplicate,
    LinkFlap,
    LinkLoss,
    NetworkPartition,
    RetryOnlyPolicy,
    UnrecoverableFaultError,
)
from repro.graph.generators import rmat
from repro.partition import partition
from repro.runtime import ProtocolRunner
from repro.runtime.events import Simulator, Timeout
from repro.runtime.flags import FlagBoard
from repro.topology import dgx1


@pytest.fixture(scope="module")
def workload():
    g = rmat(250, 1800, seed=4)
    r = partition(g, 8, seed=0)
    rel = CommRelation(g, r.assignment, 8)
    plan = SPSTPlanner(dgx1(), seed=0).plan(rel)
    return g, rel, plan


@pytest.fixture(scope="module")
def blocks(workload):
    g, rel, _ = workload
    rng = np.random.default_rng(12)
    feats = rng.standard_normal((g.num_vertices, 5)).astype(np.float32)
    return [feats[rel.local_vertices[d]] for d in range(8)]


@pytest.fixture(scope="module")
def expected(workload, blocks):
    _, rel, plan = workload
    return CompiledAllgather(rel, plan).forward(blocks)


@pytest.fixture(scope="module")
def baseline_time(workload, blocks):
    _, rel, plan = workload
    _, report = ProtocolRunner(rel, plan).run_data(blocks)
    return report.total_time


def run_with(workload, blocks, fault_plan, policy=None):
    _, rel, plan = workload
    runner = ProtocolRunner(
        rel, plan, injector=FaultInjector(fault_plan), policy=policy
    )
    return runner, runner.run_data(blocks)


def last_stage_pair(plan):
    last = plan.num_stages - 1
    t = next(t for t in plan.tuples() if t.stage == last)
    return t.src, t.dst, last


def used_connection(plan) -> str:
    route = next(r for r in plan.routes if r.edges)
    return route.edges[0][0].connections[0].name


class TestTimingInvariance:
    def test_unarmed_injector_is_byte_identical(
        self, workload, blocks, expected, baseline_time
    ):
        """An attached-but-empty chaos layer costs exactly nothing."""
        runner, (result, report) = run_with(workload, blocks, FaultPlan())
        assert report.total_time == baseline_time
        assert all(np.array_equal(a, b) for a, b in zip(result, expected))
        assert runner.injector.log.is_empty

    def test_chaos_run_still_bit_identical(
        self, workload, blocks, expected, baseline_time
    ):
        _, _, plan = workload
        fault_plan = FaultPlan([
            FlagDrop(kind="ready", device=2, stage=0, count=1),
            LinkFlap(
                connection=used_connection(plan),
                time=baseline_time * 0.3,
                period=baseline_time * 0.2,
                count=1,
            ),
        ])
        _, (result, report) = run_with(workload, blocks, fault_plan)
        assert all(np.array_equal(a, b) for a, b in zip(result, expected))
        assert report.total_time >= baseline_time


class TestFlagEdgeCases:
    def test_done_flag_dropped_at_last_stage(
        self, workload, blocks, expected, baseline_time
    ):
        """The final hand-off message is lost; the re-fetch saves it."""
        _, _, plan = workload
        src, dst, last = last_stage_pair(plan)
        fault_plan = FaultPlan([
            FlagDrop(kind="done", device=src, peer=dst, stage=last, count=1)
        ])
        runner, (result, report) = run_with(workload, blocks, fault_plan)
        assert all(np.array_equal(a, b) for a, b in zip(result, expected))
        assert report.total_time > baseline_time
        counts = runner.injector.log.counts()
        assert counts.get("inject", 0) >= 1
        assert counts.get("recover", 0) >= 1

    def test_retry_budget_exhaustion_is_typed(self, workload, blocks):
        """Fifty straight losses of one flag must exhaust the budget."""
        _, _, plan = workload
        src, dst, _ = last_stage_pair(plan)
        fault_plan = FaultPlan([
            FlagDrop(kind="done", device=src, peer=dst, stage=0, count=50)
        ])
        policy = RetryOnlyPolicy(max_retries=3)
        with pytest.raises(UnrecoverableFaultError) as err:
            run_with(workload, blocks, fault_plan, policy=policy)
        assert err.value.attempts == policy.max_retries + 1


class TestDeviceEdgeCases:
    def test_two_simultaneous_crashes(self, workload, blocks, baseline_time):
        t = baseline_time * 0.25
        fault_plan = FaultPlan([
            DeviceCrash(device=2, time=t),
            DeviceCrash(device=5, time=t),
        ])
        with pytest.raises(DeviceLostError) as err:
            run_with(workload, blocks, fault_plan)
        assert err.value.devices == [2, 5]
        assert err.value.fault_log is not None
        assert not err.value.fault_log.is_empty

    def test_transient_stall_recovers(
        self, workload, blocks, expected, baseline_time
    ):
        fault_plan = FaultPlan([
            DeviceStall(
                device=1, time=baseline_time * 0.2, duration=baseline_time
            )
        ])
        _, (result, report) = run_with(workload, blocks, fault_plan)
        assert all(np.array_equal(a, b) for a, b in zip(result, expected))
        assert report.total_time > baseline_time


class TestLinkEdgeCases:
    def test_link_flap_mid_stage(
        self, workload, blocks, expected, baseline_time
    ):
        _, _, plan = workload
        fault_plan = FaultPlan([
            LinkFlap(
                connection=used_connection(plan),
                time=baseline_time * 0.25,
                period=baseline_time * 0.5,
                count=2,
            )
        ])
        _, (result, report) = run_with(workload, blocks, fault_plan)
        assert all(np.array_equal(a, b) for a, b in zip(result, expected))
        assert report.total_time > baseline_time

    def test_permanent_link_loss_triggers_reroute(
        self, workload, blocks, expected, baseline_time
    ):
        _, _, plan = workload
        fault_plan = FaultPlan([
            LinkLoss(connection=used_connection(plan), time=baseline_time * 0.2)
        ])
        runner, (result, report) = run_with(workload, blocks, fault_plan)
        assert all(np.array_equal(a, b) for a, b in zip(result, expected))
        policies = runner.injector.log.policy_counts()
        assert policies["repair"] + policies["degrade"] >= 1


class TestNetworkPartitions:
    def test_short_blackout_recovers_in_place(
        self, workload, blocks, expected, baseline_time
    ):
        """Every wire goes dark briefly; in-flight transfers ride it out."""
        _, _, plan = workload
        fault_plan = FaultPlan([
            NetworkPartition(
                connections=tuple(sorted(plan.topology.connections)),
                time=baseline_time * 0.3,
                duration=baseline_time * 0.5,
            )
        ])
        _, (result, report) = run_with(workload, blocks, fault_plan)
        assert all(np.array_equal(a, b) for a, b in zip(result, expected))
        assert report.total_time > baseline_time

    def test_long_blackout_waits_for_heal(
        self, workload, blocks, expected, baseline_time
    ):
        """The blackout outlives the retry ladder: with no surviving path
        anywhere, the protocol must wait for the scheduled heal instead of
        burning its retry budget — and still deliver exact rows."""
        _, _, plan = workload
        fault_plan = FaultPlan([
            NetworkPartition(
                connections=tuple(sorted(plan.topology.connections)),
                time=baseline_time * 0.3,
                duration=baseline_time * 10,
            )
        ])
        runner, (result, report) = run_with(workload, blocks, fault_plan)
        assert all(np.array_equal(a, b) for a, b in zip(result, expected))
        assert report.total_time > baseline_time * 10
        waits = [
            r for r in runner.injector.log.records
            if "waiting for heal" in r.detail
        ]
        assert waits and all(r.action == "degrade" for r in waits)


class TestFlagDuplication:
    def test_duplicated_done_flag_is_suppressed(
        self, workload, blocks, expected
    ):
        """Stale duplicates of the final hand-off arrive late; the board
        dedupes them, so no receiver is released before its payload."""
        _, _, plan = workload
        src, dst, last = last_stage_pair(plan)
        fault_plan = FaultPlan([
            FlagDuplicate(
                kind="done", device=src, peer=dst, stage=last,
                copies=2, jitter=1e-8, count=1,
            )
        ])
        runner, (result, _) = run_with(workload, blocks, fault_plan)
        assert all(np.array_equal(a, b) for a, b in zip(result, expected))
        suppressed = [
            r for r in runner.injector.log.records
            if "stale duplicate suppressed" in r.detail
        ]
        assert len(suppressed) == 2

    def _board_run(self, dedupe: bool):
        sim = Simulator()
        injector = FaultInjector(FaultPlan([
            FlagDuplicate(kind="ready", device=0, stage=0,
                          copies=2, jitter=1e-7, count=1)
        ]))
        board = FlagBoard(sim, injector=injector)
        saved = FlagBoard.dedupe
        FlagBoard.dedupe = dedupe
        try:
            def setter():
                board.set_ready(0, 0)
                yield Timeout(1e-6)

            sim.spawn(setter(), "setter")
            sim.run()
        finally:
            FlagBoard.dedupe = saved
        return board.ready_flag(0, 0).value

    def test_board_dedupe_hook(self):
        """The test-only hook: dedupe on holds the monotone flag at its
        true value; off, stale copies overshoot it (the bug the chaos
        delivery oracle exists to catch)."""
        assert self._board_run(dedupe=True) == 1
        assert self._board_run(dedupe=False) == 3


class TestCleanShutdown:
    """Satellite 2: an aborting run must not leak simulator processes
    (or OS threads — the runtime is single-threaded by design)."""

    def _assert_clean(self, runner):
        sim = runner._last_sim
        assert sim is not None
        assert all(p.finished for p in sim._processes)

    def test_no_leaks_after_device_loss(self, workload, blocks, baseline_time):
        before = threading.active_count()
        fault_plan = FaultPlan([DeviceCrash(device=2, time=baseline_time * 0.25)])
        _, rel, plan = workload
        runner = ProtocolRunner(rel, plan, injector=FaultInjector(fault_plan))
        with pytest.raises(DeviceLostError):
            runner.run_data(blocks)
        assert threading.active_count() == before
        self._assert_clean(runner)

    def test_no_leaks_after_unrecoverable_fault(self, workload, blocks):
        before = threading.active_count()
        _, rel, plan = workload
        src, dst, _ = last_stage_pair(plan)
        fault_plan = FaultPlan([
            FlagDrop(kind="done", device=src, peer=dst, stage=0, count=50)
        ])
        runner = ProtocolRunner(
            rel, plan, injector=FaultInjector(fault_plan),
            policy=RetryOnlyPolicy(max_retries=3),
        )
        with pytest.raises(UnrecoverableFaultError):
            runner.run_data(blocks)
        assert threading.active_count() == before
        self._assert_clean(runner)

    def test_shutdown_reports_stuck_processes(self):
        sim = Simulator()

        def stuck():
            yield Timeout(1.0)

        sim.spawn(stuck(), "stuck-proc")
        sim.run(until=0.1)
        assert sim.shutdown() == ["stuck-proc"]
        assert sim.shutdown() == []  # idempotent


class TestReproducibility:
    def test_identical_runs_identical_logs(self, workload, blocks, baseline_time):
        _, _, plan = workload
        events = [
            FlagDrop(kind="ready", device=3, stage=0, count=1),
            LinkLoss(connection=used_connection(plan), time=baseline_time * 0.2),
            DeviceStall(
                device=6, time=baseline_time * 0.4, duration=baseline_time * 0.5
            ),
        ]
        runs = []
        for _ in range(2):
            runner, (result, report) = run_with(
                workload, blocks, FaultPlan(events, seed=3)
            )
            runs.append((report.total_time, runner.injector.log.signature()))
        assert runs[0] == runs[1]
