"""Tests for the functional graphAllgather runtime (data movement)."""

import numpy as np
import pytest

from repro.comm.allgather import CompiledAllgather
from repro.core import CommRelation, SPSTPlanner, peer_to_peer_plan
from repro.core.nonatomic import max_substages, split_backward_substages
from repro.graph.generators import rmat
from repro.partition import partition
from repro.topology import dgx1, ring


@pytest.fixture(scope="module", params=["spst", "p2p", "ring"])
def runtime(request):
    graph = rmat(250, 1800, seed=4)
    r = partition(graph, 6, seed=0)
    rel = CommRelation(graph, r.assignment, 6)
    if request.param == "spst":
        plan = SPSTPlanner(dgx1(6), seed=0).plan(rel)
    elif request.param == "p2p":
        plan = peer_to_peer_plan(rel, dgx1(6))
    else:
        # ring forces multi-hop forwarding through relay devices
        plan = SPSTPlanner(ring(6), granularity="chunk", seed=0).plan(rel)
    return graph, rel, CompiledAllgather(rel, plan)


def local_blocks(rel, matrix):
    return [matrix[rel.local_vertices[d]] for d in range(rel.num_devices)]


class TestForward:
    def test_delivers_exact_rows(self, runtime):
        graph, rel, ag = runtime
        rng = np.random.default_rng(0)
        h = rng.standard_normal((graph.num_vertices, 7)).astype(np.float32)
        full = ag.forward(local_blocks(rel, h))
        for d in range(rel.num_devices):
            layout = np.concatenate(
                [rel.local_vertices[d], rel.remote_vertices[d]]
            )
            assert np.array_equal(full[d], h[layout])

    def test_dimension_agnostic(self, runtime):
        graph, rel, ag = runtime
        for dim in (1, 3, 64):
            h = np.arange(graph.num_vertices * dim, dtype=np.float32)
            h = h.reshape(graph.num_vertices, dim)
            full = ag.forward(local_blocks(rel, h))
            assert full[0].shape[1] == dim

    def test_wrong_block_count_rejected(self, runtime):
        _, rel, ag = runtime
        with pytest.raises(ValueError):
            ag.forward([np.zeros((1, 2))])

    def test_wrong_row_count_rejected(self, runtime):
        _, rel, ag = runtime
        blocks = [
            np.zeros((rel.local_vertices[d].size + 1, 2), dtype=np.float32)
            for d in range(rel.num_devices)
        ]
        with pytest.raises(ValueError):
            ag.forward(blocks)


class TestBackward:
    def test_gradients_accumulate_at_owner(self, runtime):
        """Owner's gradient = its own grad + sum over consumers' grads."""
        graph, rel, ag = runtime
        rng = np.random.default_rng(1)
        dim = 5
        grads = []
        for d in range(rel.num_devices):
            rows = rel.local_vertices[d].size + rel.remote_vertices[d].size
            grads.append(rng.standard_normal((rows, dim)).astype(np.float64))
        out = ag.backward(grads)

        # Reference: accumulate per global vertex.
        expected = np.zeros((graph.num_vertices, dim))
        for d in range(rel.num_devices):
            layout = np.concatenate(
                [rel.local_vertices[d], rel.remote_vertices[d]]
            )
            np.add.at(expected, layout, grads[d])
        for d in range(rel.num_devices):
            assert np.allclose(out[d], expected[rel.local_vertices[d]],
                               atol=1e-9)

    def test_forward_backward_adjoint(self, runtime):
        """<forward(h), g> == <h, backward(g)> — allgather is linear."""
        graph, rel, ag = runtime
        rng = np.random.default_rng(2)
        dim = 3
        h = rng.standard_normal((graph.num_vertices, dim))
        blocks = local_blocks(rel, h)
        full = ag.forward(blocks)
        grads = [rng.standard_normal(f.shape) for f in full]
        back = ag.backward(grads)
        lhs = sum((f * g).sum() for f, g in zip(full, grads))
        rhs = sum((b * x).sum() for b, x in zip(back, blocks))
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestNonAtomicSubstages:
    def test_waves_isolate_receivers(self, runtime):
        """Within one wave, each (receiver, stage) hears one sender —
        gradients for one vertex can therefore never collide."""
        _, rel, ag = runtime
        tuples = ag.plan.backward_tuples()
        for wave in split_backward_substages(tuples):
            senders = {}
            for t in wave:
                key = (t.dst, t.stage)
                senders.setdefault(key, set()).add(t.src)
            assert all(len(s) == 1 for s in senders.values())

    def test_waves_cover_all_tuples(self, runtime):
        _, rel, ag = runtime
        tuples = ag.plan.backward_tuples()
        waves = split_backward_substages(tuples)
        assert sum(len(w) for w in waves) == len(tuples)

    def test_wave_count_bounded(self, runtime):
        _, rel, ag = runtime
        tuples = ag.plan.backward_tuples()
        assert max_substages(tuples) <= rel.num_devices - 1

    def test_empty(self):
        assert split_backward_substages([]) == []
        assert max_substages([]) == 0
