"""Property tests for :meth:`QuantileDigest.merge` (satellite).

The serving control plane folds per-window digests into per-tenant
lifetime digests, so ``merge`` must behave exactly like observing the
concatenated stream while the digest is under its centroid cap, and
must stay deterministic (order-independent inputs aside) once lossy.
Edge cases pinned here: empty⊕empty, empty⊕x, x⊕empty, singleton
merges, and self-merge.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.quantile import QuantileDigest

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
samples = st.lists(finite_floats, max_size=60)


def _observing(values, max_centroids=128):
    d = QuantileDigest(max_centroids)
    for v in values:
        d.observe(v)
    return d


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(a=samples, b=samples)
    def test_merge_equals_observing_concatenation(self, a, b):
        left = _observing(a)
        left.merge(_observing(b))
        both = _observing(a + b)
        assert left.count == both.count == len(a) + len(b)
        if a or b:
            assert left.quantile(0.0) == both.quantile(0.0)
            assert left.quantile(1.0) == both.quantile(1.0)
            for q in (0.25, 0.5, 0.9, 0.99):
                assert left.quantile(q) == pytest.approx(
                    both.quantile(q), rel=1e-9, abs=1e-9
                )

    @settings(max_examples=60, deadline=None)
    @given(a=samples)
    def test_exact_against_numpy_while_under_cap(self, a):
        d = _observing(a)
        if not a:
            return
        arr = np.asarray(a, dtype=float)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert d.quantile(q) == pytest.approx(
                float(np.percentile(arr, 100 * q)), rel=1e-9, abs=1e-9
            )

    @settings(max_examples=30, deadline=None)
    @given(a=samples)
    def test_empty_merge_is_identity_both_ways(self, a):
        d = _observing(a)
        before = d.centroids()
        d.merge(QuantileDigest())
        assert d.centroids() == before and d.count == len(a)

        empty = QuantileDigest()
        empty.merge(_observing(a))
        assert empty.count == len(a)
        assert empty.centroids() == _observing(a).centroids()
        if a:
            assert empty.quantile(0.0) == min(a)
            assert empty.quantile(1.0) == max(a)

    @settings(max_examples=30, deadline=None)
    @given(a=st.lists(finite_floats, min_size=1, max_size=40))
    def test_self_merge_doubles_weights(self, a):
        d = _observing(a)
        d.merge(d)
        assert d.count == 2 * len(a)
        # Doubling every weight never moves a quantile.
        ref = _observing(a)
        for q in (0.0, 0.5, 1.0):
            assert d.quantile(q) == pytest.approx(ref.quantile(q))

    @settings(max_examples=30, deadline=None)
    @given(a=st.lists(finite_floats, min_size=20, max_size=60),
           b=st.lists(finite_floats, min_size=20, max_size=60))
    def test_lossy_merge_stays_deterministic(self, a, b):
        first = _observing(a, max_centroids=8)
        first.merge(_observing(b, max_centroids=8))
        second = _observing(a, max_centroids=8)
        second.merge(_observing(b, max_centroids=8))
        assert first.centroids() == second.centroids()
        assert len(first.centroids()) <= 8
        assert first.count == len(a) + len(b)


class TestMergeEdgeCases:
    def test_empty_with_empty(self):
        d = QuantileDigest()
        d.merge(QuantileDigest())
        assert d.count == 0 and d.centroids() == ()
        assert d.quantile(0.5) == 0.0  # empty digest convention

    def test_singleton_into_empty_copies_extrema(self):
        d = QuantileDigest()
        d.merge(_observing([4.25]))
        assert d.count == 1
        assert d.quantile(0.0) == d.quantile(1.0) == 4.25

    def test_exact_value_match_sums_weights(self):
        a = _observing([1.0, 1.0, 2.0])
        a.merge(_observing([1.0, 2.0, 2.0]))
        assert a.count == 6
        weights = {v: w for v, w in a.centroids()}
        assert weights[1.0] == 3.0 and weights[2.0] == 3.0

    def test_rejects_non_digest(self):
        with pytest.raises(TypeError):
            QuantileDigest().merge(object())
