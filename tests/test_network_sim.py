"""Tests for the flow-level network simulator."""

import pytest

from repro.simulator.network import Flow, NetworkSimulator
from repro.topology.links import LinkKind, PhysicalConnection


def conn(name="c", kind=LinkKind.NV1, bw=0.0):
    return PhysicalConnection(name, kind, bw)


class TestSingleFlow:
    def test_alpha_beta_time(self):
        c = conn(bw=10.0)  # 10 GB/s
        sim = NetworkSimulator(alpha=1e-6)
        results = sim.run([Flow((c,), 10e9)])
        assert len(results) == 1
        assert results[0].finish_time == pytest.approx(1.0 + 1e-6)

    def test_zero_byte_flow_costs_alpha(self):
        sim = NetworkSimulator(alpha=1e-6)
        results = sim.run([Flow((conn(),), 0.0)])
        assert results[0].finish_time == pytest.approx(1e-6)

    def test_multi_hop_bottleneck(self):
        fast = conn("f", bw=20.0)
        slow = conn("s", bw=5.0)
        sim = NetworkSimulator(alpha=0.0)
        t = sim.makespan([Flow((fast, slow), 5e9)])
        assert t == pytest.approx(1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Flow((conn(),), -1.0)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Flow((), 10.0)


class TestSharing:
    def test_equal_split_two_flows(self):
        c = conn(bw=10.0)
        sim = NetworkSimulator(alpha=0.0)
        t = sim.makespan([Flow((c,), 5e9), Flow((c,), 5e9)])
        assert t == pytest.approx(1.0)  # 10 GB total over 10 GB/s

    def test_qpi_contention_matches_table3(self):
        """Paper Table 3: attainable bandwidth ~ b/n with n users."""
        qpi = conn("qpi", LinkKind.QPI)
        sim = NetworkSimulator(alpha=0.0)
        size = 1e9
        for n in (1, 2, 3):
            flows = [Flow((qpi,), size) for _ in range(n)]
            t = sim.makespan(flows)
            attainable = size / t / 1e9
            assert attainable == pytest.approx(9.56 / n, rel=1e-6)

    def test_short_flow_releases_capacity(self):
        """After the short flow drains, the long one speeds up."""
        c = conn(bw=10.0)
        sim = NetworkSimulator(alpha=0.0)
        results = sim.run([Flow((c,), 2e9, tag="short"),
                           Flow((c,), 10e9, tag="long")])
        by_tag = {r.flow.tag: r.finish_time for r in results}
        # short: 2 GB at 5 GB/s = 0.4 s; long: 2 GB at 5 + 8 GB at 10
        assert by_tag["short"] == pytest.approx(0.4)
        assert by_tag["long"] == pytest.approx(0.4 + 0.8)

    def test_max_min_fairness_bottleneck_isolated(self):
        """A flow avoiding the bottleneck keeps its full rate."""
        shared = conn("sh", bw=10.0)
        private = conn("pr", bw=10.0)
        sim = NetworkSimulator(alpha=0.0)
        results = sim.run([
            Flow((shared,), 5e9, tag="a"),
            Flow((shared,), 5e9, tag="b"),
            Flow((private,), 5e9, tag="c"),
        ])
        by_tag = {r.flow.tag: r.finish_time for r in results}
        assert by_tag["c"] == pytest.approx(0.5)
        assert by_tag["a"] == pytest.approx(1.0)


class TestReleasesAndInjection:
    def test_staggered_release(self):
        c = conn(bw=10.0)
        sim = NetworkSimulator(alpha=0.0)
        results = sim.run([Flow((c,), 1e9, release_time=5.0)])
        assert results[0].finish_time == pytest.approx(5.1)

    def test_on_complete_injection(self):
        c = conn(bw=10.0)
        sim = NetworkSimulator(alpha=0.0)
        injected = []

        def chain(result, now):
            if result.flow.tag == "first" and not injected:
                injected.append(True)
                return [Flow((c,), 1e9, release_time=now, tag="second")]
            return []

        results = sim.run([Flow((c,), 1e9, tag="first")], on_complete=chain)
        by_tag = {r.flow.tag: r.finish_time for r in results}
        assert by_tag["second"] == pytest.approx(0.2)

    def test_injection_in_past_rejected(self):
        c = conn(bw=10.0)
        sim = NetworkSimulator(alpha=0.0)

        def bad(result, now):
            return [Flow((c,), 1.0, release_time=now - 1.0)]

        with pytest.raises(ValueError):
            sim.run([Flow((c,), 1e9)], on_complete=bad)

    def test_no_flows(self):
        assert NetworkSimulator().run([]) == []


class TestNumericalRobustness:
    def test_many_tiny_flows_terminate(self):
        c = conn(bw=10.0)
        sim = NetworkSimulator(alpha=1e-9)
        flows = [Flow((c,), 1e-3 * (i + 1)) for i in range(50)]
        results = sim.run(flows)
        assert len(results) == 50

    def test_residual_bytes_do_not_stall(self):
        """Regression: float residues below the resolution of `now`
        froze the event loop (seen with the Swap executor on orkut)."""
        shared = conn("s", bw=2.39)
        sim = NetworkSimulator(alpha=5e-8)
        flows = [Flow((shared,), 2.6e6 + 0.2616 * i) for i in range(20)]
        results = sim.run(flows)
        assert len(results) == 20
