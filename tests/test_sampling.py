"""The sampling subsystem: samplers, seed loader, per-batch planner."""

import numpy as np
import pytest

from repro.autotune import PlanCache
from repro.autotune.fingerprint import graph_fingerprint, subgraph_fingerprint
from repro.graph.csr import Graph
from repro.graph.generators import rmat
from repro.partition import partition
from repro.sampling import (
    BatchPlanner,
    KHopSampler,
    NeighborSampler,
    SeedLoader,
)
from repro.topology import topology_for_gpu_count


@pytest.fixture(scope="module")
def graph():
    return rmat(200, 1400, seed=4)


@pytest.fixture(scope="module")
def topology():
    return topology_for_gpu_count(4)


@pytest.fixture(scope="module")
def assignment(graph):
    return partition(graph, 4, seed=0).assignment


def parent_edge_set(graph):
    src, dst = graph.edges
    return set(zip(src.tolist(), dst.tolist()))


class TestSeedLoader:
    def test_batches_cover_and_shuffle(self, graph):
        loader = SeedLoader(graph, batch_size=32, seed=1)
        batches = list(loader.batches(0))
        assert len(batches) == loader.num_batches == 200 // 32
        flat = np.concatenate(batches)
        assert flat.size == np.unique(flat).size  # no seed repeats
        assert not np.array_equal(flat, np.sort(flat))  # shuffled

    def test_epochs_differ_but_replay_identically(self, graph):
        loader = SeedLoader(graph, batch_size=32, seed=1)
        e0 = [b.tolist() for b in loader.batches(0)]
        e1 = [b.tolist() for b in loader.batches(1)]
        assert e0 != e1
        assert e0 == [b.tolist() for b in loader.batches(0)]

    def test_drop_last_policy(self, graph):
        kept = SeedLoader(graph, batch_size=32, seed=1, drop_last=False)
        assert kept.num_batches == 7
        sizes = [b.size for b in kept.batches(0)]
        assert sizes == [32] * 6 + [8]

    def test_train_vertices_validated(self, graph):
        with pytest.raises(ValueError):
            SeedLoader(graph, 8, train_vertices=np.array([5, 999]))
        with pytest.raises(ValueError):
            SeedLoader(graph, 0)


class TestNeighborSampler:
    def test_deterministic_per_batch_index(self, graph):
        sampler = NeighborSampler(graph, (4, 4), seed=3)
        seeds = np.arange(0, 40)
        a = sampler.sample(seeds, batch_index=5)
        b = sampler.sample(seeds, batch_index=5)
        assert np.array_equal(a.vertices, b.vertices)
        assert np.array_equal(a.graph.edges[0], b.graph.edges[0])
        c = sampler.sample(seeds, batch_index=6)
        assert not (
            np.array_equal(a.vertices, c.vertices)
            and np.array_equal(a.graph.edges[0], c.graph.edges[0])
        )

    def test_edges_exist_in_parent(self, graph):
        sampler = NeighborSampler(graph, (3, 3), seed=0)
        batch = sampler.sample(np.arange(0, 64), batch_index=1)
        parent = parent_edge_set(graph)
        s, d = batch.graph.edges
        for u, v in zip(batch.vertices[s], batch.vertices[d]):
            assert (int(u), int(v)) in parent

    def test_frontiers_are_cumulative(self, graph):
        sampler = NeighborSampler(graph, (4, 4), seed=0)
        batch = sampler.sample(np.arange(0, 32))
        assert np.array_equal(batch.frontiers[0], batch.seeds)
        assert np.array_equal(batch.frontiers[-1], batch.vertices)
        for prev, cur in zip(batch.frontiers, batch.frontiers[1:]):
            assert np.isin(prev, cur).all()

    def test_seed_rows_map_back(self, graph):
        sampler = NeighborSampler(graph, (4,), seed=0)
        batch = sampler.sample(np.array([3, 17, 90]))
        assert np.array_equal(batch.vertices[batch.seed_rows], batch.seeds)
        with pytest.raises(KeyError):
            batch.local_rows(np.array([graph.num_vertices - 1, 3]))

    def test_validates_inputs(self, graph):
        with pytest.raises(ValueError):
            NeighborSampler(graph, ())
        with pytest.raises(ValueError):
            NeighborSampler(graph, (4, 0))
        with pytest.raises(ValueError):
            NeighborSampler(graph, (4,)).sample(np.array([9999]))


class TestKHopSampler:
    def test_matches_khop_neighborhood(self, graph):
        sampler = KHopSampler(graph, hops=2)
        seeds = np.array([0, 1, 2])
        batch = sampler.sample(seeds)
        assert np.array_equal(
            batch.vertices, graph.k_hop_in_neighborhood(seeds, 2)
        )

    def test_induced_edges_complete(self, graph):
        """Every parent edge between sampled vertices is present."""
        batch = KHopSampler(graph, hops=1).sample(np.array([5, 6]))
        member = set(batch.vertices.tolist())
        want = {
            (u, v) for u, v in parent_edge_set(graph)
            if u in member and v in member
        }
        s, d = batch.graph.edges
        got = {
            (int(u), int(v))
            for u, v in zip(batch.vertices[s], batch.vertices[d])
        }
        assert got == want


class TestFingerprints:
    def test_graph_fingerprint_memoised(self):
        """Satellite: the memo fills lazily and never changes the digest."""
        g1 = rmat(60, 240, seed=9)
        g2 = rmat(60, 240, seed=9)
        assert g1._fingerprint is None
        cold = graph_fingerprint(g1)
        assert g1._fingerprint == cold
        assert graph_fingerprint(g1) == cold  # memo hit
        assert graph_fingerprint(g2) == cold  # fresh instance agrees

    def test_subgraph_fingerprint_sensitivity(self, graph):
        sampler = NeighborSampler(graph, (4, 4), seed=3)
        a = sampler.sample(np.arange(0, 32), batch_index=0)
        b = sampler.sample(np.arange(0, 32), batch_index=1)
        fp_a = subgraph_fingerprint(graph, a.vertices, a.graph)
        assert fp_a == subgraph_fingerprint(graph, a.vertices, a.graph)
        assert fp_a != subgraph_fingerprint(graph, b.vertices, b.graph)
        other_parent = rmat(200, 1400, seed=5)
        assert fp_a != subgraph_fingerprint(other_parent, a.vertices, a.graph)


class TestBatchPlanner:
    def _batches(self, graph, n=4):
        loader = SeedLoader(graph, batch_size=32, seed=1)
        sampler = NeighborSampler(graph, (4, 4), seed=2)
        return [
            sampler.sample(s, i) for i, s in enumerate(loader.batches(0))
        ][:n]

    def test_ladder_cold_then_patched(self, graph, assignment, topology):
        planner = BatchPlanner(graph, assignment, topology)
        planned = planner.plan_stream(self._batches(graph))
        assert planned[0].plan_source == "planned"
        assert all(
            p.plan_source in ("patched", "replanned") for p in planned[1:]
        )
        stats = planner.stats.as_dict()
        assert stats["batches"] == len(planned)
        assert stats["plans_per_second"] > 0

    def test_cache_makes_replays_free(self, graph, assignment, topology,
                                      tmp_path):
        cache = PlanCache(tmp_path)
        batches = self._batches(graph)
        BatchPlanner(graph, assignment, topology,
                     plan_cache=cache).plan_stream(batches)
        replay = BatchPlanner(graph, assignment, topology, plan_cache=cache)
        planned = replay.plan_stream(batches)
        assert [p.plan_source for p in planned] == ["cache"] * len(batches)
        assert cache.stats.hits == len(batches)

    def test_incremental_off_plans_cold(self, graph, assignment, topology):
        planner = BatchPlanner(graph, assignment, topology,
                               incremental=False)
        planned = planner.plan_stream(self._batches(graph))
        assert all(p.plan_source == "planned" for p in planned)

    def test_plans_are_valid_for_their_relation(self, graph, assignment,
                                                topology):
        from repro.comm.allgather import CompiledAllgather

        planner = BatchPlanner(graph, assignment, topology)
        for planned in planner.plan_stream(self._batches(graph)):
            # CompiledAllgather validates the plan against the relation.
            CompiledAllgather(planned.relation, planned.plan)

    def test_metrics_counters_recorded(self, graph, assignment, topology):
        """Satellite: batch plan sources land on a metrics registry."""
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        planner = BatchPlanner(graph, assignment, topology,
                               metrics=registry)
        planner.plan_stream(self._batches(graph, n=3))
        snap = registry.snapshot()
        counts = {
            key: val for key, val in snap.items()
            if key.startswith("sampling.batch_plan")
        }
        assert sum(counts.values()) == 3
        assert snap["sampling.plan_wall_seconds"]["count"] == 3

    def test_assignment_must_cover_parent(self, graph, topology):
        with pytest.raises(ValueError):
            BatchPlanner(graph, np.zeros(3, dtype=np.int64), topology)
