"""Tests for the communication relation, including the paper's Figure 1.

The paper's running example partitions a 12-vertex graph onto 4 GPUs and
states (§4.1): for GPU 1 holding {a, b, c}, the local vertices are
V_l = {a, b, c} and the remote vertices V_r = {d, f, j, k}.  We encode
that graph and check the relation reproduces the paper's sets.
"""

import numpy as np
import pytest

from repro.core.relation import CommRelation
from repro.graph.csr import Graph
from repro.partition import partition


def figure1_graph():
    """The example graph of paper Figure 1a (letters -> indices).

    a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10 l=11.  Edges are the
    undirected adjacencies drawn in the figure, symmetrised; the exact
    set reproduces N(a) = {b, c, d, f, j}.
    """
    pairs = [
        (0, 1), (0, 2), (0, 3), (0, 5), (0, 9),   # a-b a-c a-d a-f a-j
        (1, 2),                                   # b-c
        (2, 10),                                  # c-k
        (3, 4), (3, 5),                           # d-e d-f
        (4, 7), (4, 8),                           # e-h e-i
        (5, 7),                                   # f-h
        (6, 8),                                   # g-i
        (9, 10), (9, 11),                         # j-k j-l
    ]
    src = np.array([p[0] for p in pairs] + [p[1] for p in pairs])
    dst = np.array([p[1] for p in pairs] + [p[0] for p in pairs])
    return Graph(src, dst, 12)


#: Figure 1b: GPU1={a,b,c}, GPU2={d,e,f}, GPU3={g,h,i}, GPU4={j,k,l}
FIG1_ASSIGNMENT = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3])


class TestFigure1Example:
    def test_local_vertices(self):
        rel = CommRelation(figure1_graph(), FIG1_ASSIGNMENT, 4)
        assert rel.local_vertices[0].tolist() == [0, 1, 2]   # {a,b,c}

    def test_remote_vertices_match_paper(self):
        rel = CommRelation(figure1_graph(), FIG1_ASSIGNMENT, 4)
        # paper: V_r(GPU1) = {d, f, j, k} = {3, 5, 9, 10}
        assert rel.remote_vertices[0].tolist() == [3, 5, 9, 10]

    def test_send_sets_are_symmetric_to_needs(self):
        rel = CommRelation(figure1_graph(), FIG1_ASSIGNMENT, 4)
        # GPU2 must send d and f to GPU1 (a's neighbors there)
        assert rel.send_set(1, 0).tolist() == [3, 5]
        # GPU4 must send j and k to GPU1
        assert rel.send_set(3, 0).tolist() == [9, 10]

    def test_allgather_semantics(self):
        """Paper §4.2: after graph Allgather GPU1 holds {a,b,c,d,f,j,k}."""
        rel = CommRelation(figure1_graph(), FIG1_ASSIGNMENT, 4)
        rows = np.concatenate([rel.local_vertices[0], rel.remote_vertices[0]])
        assert sorted(rows.tolist()) == [0, 1, 2, 3, 5, 9, 10]


class TestRelationGeneral:
    def test_every_cross_edge_covered(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        rel = CommRelation(small_graph, r.assignment, 4)
        src, dst = small_graph.edges
        for u, v in zip(src.tolist()[:300], dst.tolist()[:300]):
            du, dv = r.assignment[u], r.assignment[v]
            if du != dv:
                assert u in rel.send_set(du, dv)
                assert u in rel.remote_vertices[dv]

    def test_classes_partition_cross_vertices(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        rel = CommRelation(small_graph, r.assignment, 4)
        seen = set()
        for cls in rel.classes:
            ids = set(cls.vertices.tolist())
            assert not ids & seen, "classes must be disjoint"
            seen |= ids
            assert all(r.assignment[v] == cls.source for v in ids)
        assert len(seen) == rel.num_cross_vertices

    def test_class_destinations_exact(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        rel = CommRelation(small_graph, r.assignment, 4)
        for cls in rel.classes[:20]:
            for v in cls.vertices[:5]:
                consumers = {
                    int(r.assignment[w]) for w in small_graph.out_neighbors(v)
                    if r.assignment[w] != cls.source
                }
                assert consumers == set(cls.destinations)

    def test_total_volume(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        rel = CommRelation(small_graph, r.assignment, 4)
        by_pairs = sum(v.size for v in rel.send_pairs().values())
        by_classes = sum(c.size * len(c.destinations) for c in rel.classes)
        assert rel.total_volume_vertices() == by_pairs == by_classes

    def test_no_cross_edges_no_classes(self):
        g = Graph([0, 1], [1, 0], 4)
        rel = CommRelation(g, np.array([0, 0, 1, 1]), 2)
        assert rel.classes == []
        assert rel.total_volume_vertices() == 0

    def test_assignment_length_checked(self, small_graph):
        with pytest.raises(ValueError):
            CommRelation(small_graph, np.zeros(3, dtype=np.int64), 2)

    def test_assignment_range_checked(self, small_graph):
        bad = np.zeros(small_graph.num_vertices, dtype=np.int64)
        bad[0] = 9
        with pytest.raises(ValueError):
            CommRelation(small_graph, bad, 2)


class TestLocalGraph:
    def test_layout_local_then_remote(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        rel = CommRelation(small_graph, r.assignment, 4)
        lg = rel.local_graph(0)
        assert lg.num_local == rel.local_vertices[0].size
        assert lg.num_remote == rel.remote_vertices[0].size
        assert np.array_equal(lg.global_ids[: lg.num_local],
                              rel.local_vertices[0])
        assert np.array_equal(lg.global_ids[lg.num_local :],
                              rel.remote_vertices[0])

    def test_edges_preserved_and_relabelled(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        rel = CommRelation(small_graph, r.assignment, 4)
        lg = rel.local_graph(1)
        to_global = lg.global_ids
        src, dst = lg.graph.edges
        # every local edge maps back to a real global edge with local head
        for u, v in list(zip(src.tolist(), dst.tolist()))[:100]:
            assert small_graph.has_edge(int(to_global[u]), int(to_global[v]))
            assert r.assignment[to_global[v]] == 1

    def test_edge_count_matches_heads(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        rel = CommRelation(small_graph, r.assignment, 4)
        total = sum(rel.local_graph(d).graph.num_edges for d in range(4))
        assert total == small_graph.num_edges

    def test_local_rows_lookup(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        rel = CommRelation(small_graph, r.assignment, 4)
        lg = rel.local_graph(0)
        some = lg.global_ids[[0, lg.num_local, len(lg.global_ids) - 1]]
        rows = lg.local_rows(some)
        assert rows.tolist() == [0, lg.num_local, len(lg.global_ids) - 1]

    def test_local_rows_missing_vertex_raises(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        rel = CommRelation(small_graph, r.assignment, 4)
        lg = rel.local_graph(0)
        absent = np.setdiff1d(
            np.arange(small_graph.num_vertices), lg.global_ids
        )
        if absent.size:
            with pytest.raises(KeyError):
                lg.local_rows(absent[:1])

    def test_cached(self, small_graph):
        r = partition(small_graph, 4, seed=0)
        rel = CommRelation(small_graph, r.assignment, 4)
        assert rel.local_graph(2) is rel.local_graph(2)
