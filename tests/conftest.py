"""Shared fixtures: small deterministic graphs and workloads.

Tests avoid the full dataset twins (seconds of generation/partitioning
each) and instead use scaled-down synthetic graphs that exercise the
same code paths in milliseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.generators import planted_partition, rmat


@pytest.fixture(scope="session")
def small_graph() -> Graph:
    """~300 vertices, power-law-ish, dense enough to cut everywhere."""
    return rmat(300, 2400, seed=3)


@pytest.fixture(scope="session")
def community_graph() -> Graph:
    """Planted-partition graph the partitioner should cut cleanly."""
    return planted_partition(400, 3200, num_communities=8, p_intra=0.9, seed=5)


@pytest.fixture()
def tiny_graph() -> Graph:
    """The hand-checkable 6-vertex example used in relation tests."""
    #    0 -> 1, 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 4, 4 -> 5, 5 -> 0, 1 -> 4
    src = np.array([0, 0, 1, 2, 3, 4, 5, 1])
    dst = np.array([1, 2, 2, 3, 4, 5, 0, 4])
    return Graph(src, dst, 6)


def assert_valid_assignment(assignment: np.ndarray, num_vertices: int,
                            num_parts: int) -> None:
    assert assignment.shape == (num_vertices,)
    assert assignment.min() >= 0
    assert assignment.max() < num_parts
