"""Tests for the peer-to-peer planner and static routing."""

import numpy as np
import pytest

from repro.core import CommRelation, peer_to_peer_plan
from repro.core.baseline_planners import static_route
from repro.graph.csr import Graph
from repro.graph.generators import rmat
from repro.partition import partition
from repro.topology import LinkKind, dgx1, ring


class TestStaticRoute:
    def test_prefers_direct_link(self):
        topo = dgx1()
        route = static_route(topo, 0, 1)
        assert len(route) == 1
        assert route[0].is_nvlink

    def test_multi_hop_on_ring(self):
        topo = ring(6)
        route = static_route(topo, 0, 3)
        assert len(route) == 3
        assert route[0].src == 0 and route[-1].dst == 3
        # consecutive hops chain
        for a, b in zip(route, route[1:]):
            assert a.dst == b.src

    def test_self_route_empty(self):
        assert static_route(dgx1(), 2, 2) == []

    def test_unreachable_raises(self):
        from repro.topology.topology import TopologyBuilder

        b = TopologyBuilder()
        b.add_device()
        b.add_device()
        topo = b.build()  # no links at all
        with pytest.raises(RuntimeError, match="no route"):
            static_route(topo, 0, 1)


class TestPeerToPeerPlan:
    @pytest.fixture(scope="class")
    def relation(self):
        graph = rmat(200, 1600, seed=6)
        r = partition(graph, 8, seed=0)
        return CommRelation(graph, r.assignment, 8)

    def test_single_stage_on_complete_topology(self, relation):
        plan = peer_to_peer_plan(relation, dgx1())
        assert plan.num_stages == 1

    def test_uses_direct_links_only(self, relation):
        plan = peer_to_peer_plan(relation, dgx1())
        for t in plan.tuples():
            assert t.link.src == t.src and t.link.dst == t.dst

    def test_covers_relation(self, relation):
        plan = peer_to_peer_plan(relation, dgx1())
        plan.validate(relation)

    def test_tuple_per_pair(self, relation):
        """One batched transfer per communicating pair (per link)."""
        plan = peer_to_peer_plan(relation, dgx1())
        pairs = {(t.src, t.dst) for t in plan.tuples()}
        expected = {
            (i, j) for (i, j), v in relation.send_pairs().items() if v.size
        }
        assert pairs == expected

    def test_pair_payload_matches_send_set(self, relation):
        plan = peer_to_peer_plan(relation, dgx1())
        for t in plan.tuples():
            expected = relation.send_set(t.src, t.dst)
            assert np.array_equal(t.vertices, expected)
