"""The pluggable scheme registry and the communication-avoiding schemes.

Covers the registry round-trip (register -> resolve -> tune -> cache
fingerprint), the typed unknown-scheme error across every surface, the
CAGNET 1.5D/2D oblivious plans (structure, validation, exact gradient
parity with the single-device oracle), DistGNN delayed aggregation
(bit-parity at staleness 0, the tolerance-ladder degradation contract,
amortised pricing) and cost-vs-event ranking agreement for the widened
candidate space.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.api as dgcl
from repro.autotune import AutoTuner, CandidateScheme, SearchSpace
from repro.baselines.strategies import Workload, evaluate_scheme
from repro.chaos.soak import staleness_tolerance
from repro.comm.allgather import CompiledAllgather
from repro.core import CommRelation
from repro.core.baseline_planners import peer_to_peer_plan
from repro.errors import ReproError, UnknownSchemeError
from repro.gnn import SingleDeviceTrainer, build_gcn
from repro.gnn.distributed import DistributedTrainer
from repro.graph.datasets import synthetic_features, synthetic_labels
from repro.graph.generators import rmat
from repro.partition import partition
from repro.schemes import (
    get_scheme,
    global_registry,
    plan_scheme_names,
    register_scheme,
    resolve_strategy,
    scheme_names,
    session_strategy_names,
)
from repro.schemes.cagnet import cagnet_2d_plan, grid_shape
from repro.schemes.distgnn import DelayedAllgather, DistGNNTrainer
from repro.topology.presets import dgx1, dual_dgx1, ring, torus

NEW_SCHEMES = ("cagnet-1.5d", "cagnet-2d", "distgnn-delayed")


@pytest.fixture(scope="module")
def task():
    """A partitioned training task shared by the parity tests."""
    g = rmat(220, 1500, seed=7)
    feats = synthetic_features(g, 12, seed=3)
    labels = synthetic_labels(g, 5, seed=3)
    rel = CommRelation(g, partition(g, 8, seed=0).assignment, 8)
    return g, feats, labels, rel


class TestRegistry:
    def test_builtins_registered(self):
        names = scheme_names()
        for name in ("dgcl", "dgcl-cache", "peer-to-peer", "swap",
                     "replication", "dgcl-r") + NEW_SCHEMES:
            assert name in names
        assert len(names) >= 6  # the tuner prices >= 6 scheme families

    def test_aliases_resolve(self):
        assert get_scheme("spst").name == "dgcl"
        assert get_scheme("p2p").name == "peer-to-peer"
        assert CandidateScheme("spst").strategy == "dgcl"

    def test_plan_based_subset(self):
        plan_based = set(plan_scheme_names())
        assert set(NEW_SCHEMES) <= plan_based
        assert "swap" not in plan_based and "replication" not in plan_based

    def test_unknown_scheme_error_type_and_message(self):
        with pytest.raises(UnknownSchemeError) as exc:
            get_scheme("quantum")
        err = exc.value
        assert isinstance(err, ReproError)
        assert isinstance(err, KeyError) and isinstance(err, ValueError)
        assert str(err).startswith("unknown strategy 'quantum'")
        assert "dgcl" in str(err) and "register_scheme" in str(err)
        assert "quantum" == err.name and "dgcl" in err.registered

    def test_unknown_rejected_everywhere(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            CandidateScheme(strategy="quantum")
        with pytest.raises(ValueError, match="unknown strategy"):
            dgcl.session(dgx1(), strategy="quantum")
        with pytest.raises(KeyError):
            evaluate_scheme(Workload("reddit", "gcn", dgx1(num_gpus=2)),
                            scheme="quantum")

    def test_resolve_strategy_session_vocabulary(self):
        assert resolve_strategy("auto") is None
        assert resolve_strategy("spst").name == "dgcl"
        with pytest.raises(UnknownSchemeError) as exc:
            resolve_strategy("swap")  # evaluation-only: not executable
        assert "auto" in exc.value.registered
        assert set(dgcl.SESSION_STRATEGIES) <= set(session_strategy_names())

    def test_register_requires_builder_or_cost_fn(self):
        with pytest.raises(ValueError, match="builder"):
            register_scheme("empty-scheme")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme("dgcl", builder=lambda *a, **k: None)


class TestRegistryRoundTrip:
    """register -> session/tuner/cache all see the custom scheme."""

    @pytest.fixture()
    def custom(self):
        def builder(relation, topology, *, chunks_per_class=4, seed=0,
                    engine="vectorized", staleness=0):
            return peer_to_peer_plan(relation, topology, name="mirror-p2p")

        spec = register_scheme("mirror-p2p", builder=builder, version="7",
                               description="test-only p2p twin")
        yield spec
        global_registry().unregister("mirror-p2p")

    def test_tune_over_custom_scheme(self, custom, small_graph):
        space = SearchSpace(dgx1(), strategies=("mirror-p2p",),
                            partitioners=("hierarchical",))
        report = AutoTuner(small_graph, dgx1(), space=space).tune()
        assert report.candidate.strategy == "mirror-p2p"
        plan = report.build_plan()
        assert plan.name == "mirror-p2p"
        # Its generic pricing agrees with the real peer-to-peer scheme.
        p2p = SearchSpace(dgx1(), strategies=("peer-to-peer",),
                          partitioners=("hierarchical",), methods=(None,))
        ref = AutoTuner(small_graph, dgx1(), space=p2p).tune()
        assert report.best.cost == pytest.approx(ref.best.cost, rel=1e-9)

    def test_fingerprint_includes_name_and_version(self, custom):
        config = CandidateScheme("mirror-p2p").config()
        assert config["strategy"] == "mirror-p2p"
        assert config["scheme_version"] == "7"

    def test_session_accepts_custom_scheme(self, custom, small_graph,
                                           tmp_path):
        with dgcl.session(dgx1(), strategy="mirror-p2p",
                          plan_cache=str(tmp_path)) as s:
            report = s.build_comm_info(small_graph)
            assert report.plan.name == "mirror-p2p"
            assert report.plan_source == "planned"
        with dgcl.session(dgx1(), strategy="mirror-p2p",
                          plan_cache=str(tmp_path)) as s:
            report = s.build_comm_info(small_graph)
            assert report.plan_source == "cache"

    def test_version_bump_invalidates_cache(self, custom, small_graph,
                                            tmp_path):
        with dgcl.session(dgx1(), strategy="mirror-p2p",
                          plan_cache=str(tmp_path)) as s:
            s.build_comm_info(small_graph)
        global_registry().unregister("mirror-p2p")
        register_scheme("mirror-p2p", builder=custom.builder, version="8")
        with dgcl.session(dgx1(), strategy="mirror-p2p",
                          plan_cache=str(tmp_path)) as s:
            report = s.build_comm_info(small_graph)
            assert report.plan_source != "cache"


class TestSearchSpaceWidening:
    def test_new_schemes_enumerated(self):
        strategies = {c.strategy for c in SearchSpace(dgx1()).candidates()}
        for name in NEW_SCHEMES:
            assert name in strategies
        assert len(strategies) >= 6

    def test_staleness_swept_only_for_distgnn(self):
        cands = SearchSpace(dgx1()).candidates()
        by_strategy = {}
        for c in cands:
            by_strategy.setdefault(c.strategy, set()).add(c.staleness)
        assert by_strategy["distgnn-delayed"] == set(
            get_scheme("distgnn-delayed").staleness_options
        )
        assert by_strategy["dgcl"] == {0}
        assert by_strategy["cagnet-1.5d"] == {0}

    def test_staleness_options_pin(self):
        space = SearchSpace(dgx1(), plan_based_only=True,
                            staleness_options=(0,))
        assert {c.staleness for c in space.candidates()} == {0}

    def test_cagnet_knobs_pinned(self):
        space = SearchSpace(dgx1(), strategies=("cagnet-2d",),
                            partitioners=("hierarchical",),
                            methods=(None, "cuda-vm"), chunk_options=(1, 4))
        assert len(space.candidates()) == 1  # oblivious tree: no knobs


class TestCagnetPlans:
    def test_grid_shape(self):
        assert grid_shape(4) == (2, 2)
        assert grid_shape(8) == (2, 4)   # exact factorisation: NVLink quads
        assert grid_shape(16) == (4, 4)
        assert grid_shape(12) == (3, 4)
        assert grid_shape(7) == (3, 3)   # prime: padded ceil-sqrt grid

    @pytest.mark.parametrize("scheme", ["cagnet-1.5d", "cagnet-2d"])
    def test_plan_validates_and_delivers(self, task, scheme):
        g, feats, labels, rel = task
        plan = get_scheme(scheme).build_plan(rel, dgx1())
        runtime = CompiledAllgather(rel, plan)  # validates class coverage
        blocks = [feats[rel.local_vertices[d]] for d in range(8)]
        gathered = runtime.forward(blocks)
        ref = CompiledAllgather(rel, peer_to_peer_plan(rel, dgx1()))
        expected = ref.forward(blocks)
        for got, want in zip(gathered, expected):
            assert np.array_equal(got, want)

    def test_15d_is_a_ring_walk(self, task):
        g, feats, labels, rel = task
        plan = get_scheme("cagnet-1.5d").build_plan(rel, ring(8))
        for route in plan.routes:
            for link, _stage in route.edges:
                # Every hop of the systolic walk moves one step around
                # the ring from the source.
                assert (link.dst - link.src) % 8 == 1

    def test_2d_depth_bounded_by_grid(self, task):
        g, feats, labels, rel = task
        rows, cols = grid_shape(8)
        plan = get_scheme("cagnet-2d").build_plan(rel, dgx1())
        # Pipelined row walk then column walks: depth is bounded by the
        # grid semi-perimeter, not the ring's P - 1.
        assert plan.num_stages <= (rows - 1) + (cols - 1)

    def test_2d_walks_are_grid_neighbour_hops(self, task):
        g, feats, labels, rel = task
        rows, cols = grid_shape(8)
        plan = get_scheme("cagnet-2d").build_plan(rel, torus(rows, cols))
        for route in plan.routes:
            for link, _stage in route.edges:
                r1, c1 = divmod(link.src, cols)
                r2, c2 = divmod(link.dst, cols)
                row_hop = r1 == r2 and (c2 - c1) % cols == 1
                col_hop = c1 == c2 and (r2 - r1) % rows == 1
                assert row_hop or col_hop

    @pytest.mark.parametrize("scheme", ["cagnet-1.5d", "cagnet-2d"])
    def test_exact_gradient_parity(self, task, scheme):
        g, feats, labels, rel = task
        plan = get_scheme(scheme).build_plan(rel, dgx1())
        ref = SingleDeviceTrainer(g, build_gcn(12, 8, 5, seed=9), feats,
                                  labels, lr=0.1)
        dist = DistributedTrainer(rel, plan, build_gcn(12, 8, 5, seed=9),
                                  feats, labels, lr=0.1)
        for _ in range(3):
            a, b = ref.run_epoch(), dist.run_epoch()
            assert a.loss == pytest.approx(b.loss, rel=1e-5)
            assert np.allclose(a.logits, b.logits, atol=1e-4)


class TestDistGNN:
    def test_staleness_zero_bit_parity(self, task):
        g, feats, labels, rel = task
        plan = get_scheme("distgnn-delayed").build_plan(rel, dgx1())
        exact = DistributedTrainer(rel, plan, build_gcn(12, 8, 5, seed=2),
                                   feats, labels, lr=0.1)
        delayed = DistGNNTrainer(rel, plan, build_gcn(12, 8, 5, seed=2),
                                 feats, labels, lr=0.1, staleness=0)
        for _ in range(3):
            a, b = exact.run_epoch(), delayed.run_epoch()
            assert a.loss == b.loss  # bit-identical, not approximately
            assert np.array_equal(a.logits, b.logits)

    def test_degradation_ladder(self, task):
        g, feats, labels, rel = task
        plan = get_scheme("distgnn-delayed").build_plan(rel, dgx1())
        ref = SingleDeviceTrainer(g, build_gcn(12, 8, 5, seed=2), feats,
                                  labels, lr=0.1)
        ref_losses = [float(ref.run_epoch().loss) for _ in range(4)]
        gaps = []
        for staleness in (0, 1, 2, 4):
            t = DistGNNTrainer(rel, plan, build_gcn(12, 8, 5, seed=2),
                               feats, labels, lr=0.1, staleness=staleness)
            losses = [float(t.run_epoch().loss) for _ in range(4)]
            rtol, atol = staleness_tolerance(staleness)
            assert np.allclose(losses, ref_losses, rtol=rtol, atol=atol), \
                f"staleness {staleness} left its tolerance rung"
            gaps.append(max(abs(a - b)
                            for a, b in zip(losses, ref_losses)))
        # Monotone degradation (with float slack): staler aggregates
        # are never *more* accurate than fresher ones.
        for lo, hi in zip(gaps, gaps[1:]):
            assert hi + 1e-6 + 0.25 * lo >= lo

    def test_refresh_cadence(self, task):
        g, feats, labels, rel = task
        plan = get_scheme("distgnn-delayed").build_plan(rel, dgx1())
        ag = DelayedAllgather(rel, plan, staleness=2)
        cadence = []
        for _ in range(6):
            ag.begin_epoch()
            cadence.append(ag.fresh)
        assert cadence == [True, False, False, True, False, False]

    def test_stale_epoch_moves_no_bytes(self, task):
        g, feats, labels, rel = task
        plan = get_scheme("distgnn-delayed").build_plan(rel, dgx1())
        blocks = [feats[rel.local_vertices[d]] for d in range(8)]
        ag = DelayedAllgather(rel, plan, staleness=1)
        ag.begin_epoch()
        fresh = ag.forward(blocks)
        ag.begin_epoch()
        stale = ag.forward(blocks)
        for a, b in zip(fresh, stale):
            assert np.array_equal(a, b)  # embeddings unchanged: cache hit
        grads = [np.ones_like(f) for f in fresh]
        kept = ag.backward(grads)
        for d, got in enumerate(kept):
            assert got.shape[0] == rel.local_vertices[d].size

    def test_amortised_pricing(self):
        workload = Workload("reddit", "gcn", dgx1())
        exact = evaluate_scheme(workload, scheme="distgnn-delayed",
                                staleness=0)
        stale = evaluate_scheme(workload, scheme="distgnn-delayed",
                                staleness=4)
        assert stale.comm_time == pytest.approx(exact.comm_time / 5)
        assert stale.epoch_time < exact.epoch_time
        assert stale.detail["staleness"] == 4
        assert stale.detail["refresh_period"] == 5

    def test_staleness_ignored_for_exact_schemes(self):
        workload = Workload("reddit", "gcn", dgx1())
        a = evaluate_scheme(workload, scheme="dgcl", staleness=0)
        b = evaluate_scheme(workload, scheme="dgcl", staleness=3)
        assert a.epoch_time == b.epoch_time


class TestRankingAgreement:
    """Cost-only pricing ranks the new schemes like the event model."""

    @pytest.mark.parametrize("topology", [dgx1, dual_dgx1])
    def test_same_winner_both_fidelities(self, topology):
        workload = Workload("reddit", "gcn", topology())
        schemes = ("dgcl", "peer-to-peer") + NEW_SCHEMES

        def winner(fidelity):
            priced = {
                s: evaluate_scheme(workload, scheme=s, fidelity=fidelity)
                for s in schemes
            }
            return min(priced, key=lambda s: priced[s].epoch_time)

        assert winner("cost") == winner("event")

    def test_tuner_prices_six_plus_families(self, small_graph):
        report = AutoTuner(small_graph, dgx1()).tune()
        families = {t.candidate.strategy for t in report.trials}
        assert len(families) >= 6
        for name in NEW_SCHEMES:
            assert name in families

    @pytest.mark.parametrize("scheme", NEW_SCHEMES)
    def test_new_scheme_winner_compiles(self, small_graph, scheme):
        space = SearchSpace(dgx1(), strategies=(scheme,),
                            partitioners=("hierarchical",))
        report = AutoTuner(small_graph, dgx1(), space=space).tune()
        plan = report.build_plan()
        # The compiled winner must be executable on the tuned workload.
        workload = report.workload_for(report.candidate)
        CompiledAllgather(workload.relation, plan)
