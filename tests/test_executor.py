"""Tests for plan execution, swap staging and memory devices."""

import numpy as np
import pytest

from repro.core import CommRelation, SPSTPlanner, peer_to_peer_plan
from repro.graph.csr import Graph
from repro.partition import partition
from repro.simulator.devices import DeviceMemory, SimulatedOOMError
from repro.simulator.executor import ExecutionReport, PlanExecutor, SwapExecutor
from repro.topology import LinkKind, dgx1, dual_dgx1


@pytest.fixture(scope="module")
def setup():
    from repro.graph.generators import rmat

    graph = rmat(300, 2400, seed=3)
    r = partition(graph, 8, seed=0)
    rel = CommRelation(graph, r.assignment, 8)
    topo = dgx1()
    plan = SPSTPlanner(topo, seed=0).plan(rel)
    return graph, rel, topo, plan


class TestPlanExecutor:
    def test_empty_plan_is_free(self, setup):
        *_, topo, _ = setup[2], setup[2], setup[2], setup[3]
        ex = PlanExecutor(setup[2])
        assert ex.execute_tuples([], 4.0).total_time == 0.0

    def test_all_tuples_execute(self, setup):
        _, _, topo, plan = setup
        report = PlanExecutor(topo).execute(plan, 1024)
        assert report.num_flows == len(plan.tuples())
        assert report.total_time > 0

    def test_stage_finish_monotone_per_device_pairs(self, setup):
        _, _, topo, plan = setup
        report = PlanExecutor(topo).execute(plan, 1024)
        # Per tuple, its start must be at/after its endpoints' previous
        # stage completions — verified indirectly: stage k's earliest
        # start is not before stage k-1 exists.
        assert set(report.stage_finish) == set(t.stage for t in plan.tuples())

    def test_more_bytes_take_longer(self, setup):
        _, _, topo, plan = setup
        ex = PlanExecutor(topo)
        assert ex.execute(plan, 2048).total_time > ex.execute(plan, 64).total_time

    def test_centralized_slower_than_decentralized(self, setup):
        _, _, topo, plan = setup
        dec = PlanExecutor(topo, coordination="decentralized").execute(plan, 1024)
        cen = PlanExecutor(topo, coordination="centralized").execute(plan, 1024)
        assert cen.total_time > dec.total_time

    def test_packing_efficiency_inflates_time(self, setup):
        _, _, topo, plan = setup
        packed = PlanExecutor(topo, packing_efficiency=1.0).execute(plan, 1024)
        unpacked = PlanExecutor(topo, packing_efficiency=0.5).execute(plan, 1024)
        assert unpacked.total_time > packed.total_time

    def test_invalid_coordination(self, setup):
        with pytest.raises(ValueError):
            PlanExecutor(setup[2], coordination="psychic")

    def test_invalid_packing(self, setup):
        with pytest.raises(ValueError):
            PlanExecutor(setup[2], packing_efficiency=0.0)

    def test_backward_execution(self, setup):
        _, _, topo, plan = setup
        report = PlanExecutor(topo).execute(plan, 1024, backward=True)
        assert report.num_flows == len(plan.backward_tuples())

    def test_dependency_order_respected(self, setup):
        """No stage-k flow of a device may start before the device's
        stage-(k-1) flows all finished."""
        _, _, topo, plan = setup
        report = PlanExecutor(topo).execute(plan, 1024)
        finish = {}
        for r in report.flows:
            t = r.flow.tag
            for dev in (t.src, t.dst):
                key = (dev, t.stage)
                finish[key] = max(finish.get(key, 0.0), r.finish_time)
        for r in report.flows:
            t = r.flow.tag
            for dev in (t.src, t.dst):
                for k in range(t.stage):
                    prev = finish.get((dev, k))
                    if prev is not None:
                        assert r.start_time >= prev - 1e-12

    def test_report_bytes_moved(self, setup):
        _, _, topo, plan = setup
        report = PlanExecutor(topo).execute(plan, 100)
        assert report.bytes_moved() == pytest.approx(plan.total_units() * 100)

    def test_time_on_kinds(self, setup):
        _, _, topo, plan = setup
        report = PlanExecutor(topo).execute(plan, 1024)
        nv = report.time_on_kinds([LinkKind.NV1, LinkKind.NV2])
        assert 0 < nv <= report.total_time


class TestSwapExecutor:
    def test_runs_and_orders_phases(self, setup):
        _, rel, topo, _ = setup
        ex = SwapExecutor(topo)
        report = ex.execute(rel, 1024, dump_bytes_per_unit=1024)
        assert report.total_time > 0
        assert report.stage_finish[0] <= report.stage_finish[1]

    def test_feature_boundary_skips_dump(self, setup):
        _, rel, topo, _ = setup
        ex = SwapExecutor(topo)
        with_dump = ex.execute(rel, 1024, dump_bytes_per_unit=1024)
        no_dump = ex.execute(rel, 1024, dump_bytes_per_unit=None)
        assert no_dump.total_time < with_dump.total_time

    def test_chain_transfer_helps(self, setup):
        _, rel, topo, _ = setup
        plain = SwapExecutor(topo, chain_transfer=False).execute(rel, 1024)
        chained = SwapExecutor(topo, chain_transfer=True).execute(rel, 1024)
        assert chained.total_time <= plain.total_time

    def test_rejects_multi_machine(self, setup):
        with pytest.raises(ValueError, match="one machine"):
            SwapExecutor(dual_dgx1())

    def test_rejects_bad_efficiency(self, setup):
        with pytest.raises(ValueError):
            SwapExecutor(setup[2], host_efficiency=0.0)


class TestDeviceMemory:
    def test_allocate_and_free(self):
        mem = DeviceMemory(0, 1000)
        mem.allocate("a", 600)
        assert mem.free_bytes == 400
        mem.free("a")
        assert mem.free_bytes == 1000

    def test_oom_raises_with_details(self):
        mem = DeviceMemory(3, 100)
        mem.allocate("x", 80)
        with pytest.raises(SimulatedOOMError) as exc:
            mem.allocate("y", 50)
        assert exc.value.device == 3
        assert exc.value.requested == 50
        assert exc.value.in_use == 80

    def test_duplicate_name_rejected(self):
        mem = DeviceMemory(0, 100)
        mem.allocate("x", 10)
        with pytest.raises(ValueError):
            mem.allocate("x", 10)

    def test_free_unknown_raises(self):
        with pytest.raises(KeyError):
            DeviceMemory(0, 100).free("nope")

    def test_reset(self):
        mem = DeviceMemory(0, 100)
        mem.allocate("x", 50)
        mem.reset()
        assert mem.in_use == 0

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            DeviceMemory(0, -1)
        with pytest.raises(ValueError):
            DeviceMemory(0, 10).allocate("x", -5)
