"""GPU-count scaling study (Figures 8/9 as a script).

Sweeps 1-16 GPUs for one dataset/model and prints how each scheme's
epoch decomposes into computation and communication — showing where
DGCL separates from peer-to-peer (beyond the 4-GPU NVLink clique) and
where scaling breaks down (the IB hop to the second machine).

Run:  python examples/scaling_study.py [dataset] [model]
e.g.  python examples/scaling_study.py reddit gcn
"""

import sys

from repro.baselines import SCHEMES, Workload, evaluate_scheme
from repro.graph.datasets import DATASETS
from repro.topology import topology_for_gpu_count

GPU_COUNTS = (1, 2, 4, 8, 16)


def main(dataset: str = "reddit", model: str = "gcn") -> None:
    if dataset not in DATASETS:
        raise SystemExit(f"unknown dataset {dataset!r}; pick from {sorted(DATASETS)}")
    print(f"scaling study: {dataset} x {model}")
    print("(first run pays partitioning for each GPU count; results are cached)\n")

    header = (f"{'GPUs':>4s} | " + " | ".join(f"{s:>22s}" for s in SCHEMES))
    print(header)
    print("-" * len(header))
    best_by_count = {}
    for n in GPU_COUNTS:
        workload = Workload(dataset, model, topology_for_gpu_count(n))
        cells = []
        for scheme in SCHEMES:
            r = evaluate_scheme(workload, scheme=scheme)
            if r.ok:
                cells.append(f"{r.ms():8.3f} ({r.ms('comm_time'):7.3f})")
                best = best_by_count.get(n)
                if best is None or r.epoch_time < best[1]:
                    best_by_count[n] = (scheme, r.epoch_time)
            else:
                cells.append(f"{r.status:>22s}")
        print(f"{n:>4d} | " + " | ".join(f"{c:>22s}" for c in cells))

    print("\ncolumns: epoch ms (communication ms)")
    print("\nfastest scheme per GPU count:")
    for n, (scheme, t) in sorted(best_by_count.items()):
        print(f"  {n:>2d} GPUs: {scheme} ({t * 1e3:.3f} ms)")

    one = best_by_count.get(1)
    sixteen = best_by_count.get(16)
    if one and sixteen:
        print(f"\nbest-case speedup 1 -> 16 GPUs: {one[1] / sixteen[1]:.2f}x "
              f"(sub-linear: the IB hop between machines is the bottleneck, "
              f"paper §7.1)")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if len(args) > 0 else "reddit",
         args[1] if len(args) > 1 else "gcn")
