"""PageRank over the DGCL stack — the paper's closing suggestion.

§9: "We think DGCL may also benefit other distributed applications
(e.g., PageRank on GPU) that has an irregular communication pattern
similar to GNN training."  The rank vector is just a 1-wide embedding:
the same partition, plan and graphAllgather serve power iteration
untouched.  This script runs it on the Web-Google twin across 8
simulated GPUs and compares the per-iteration communication cost of
DGCL planning against peer-to-peer.

Run:  python examples/pagerank.py
"""

import numpy as np

from repro.apps import DistributedPageRank, pagerank
from repro.baselines import Workload
from repro.simulator import PlanExecutor
from repro.topology import dgx1


def main() -> None:
    workload = Workload("web-google", "gcn", dgx1())
    graph, relation = workload.graph, workload.relation
    print(f"graph: {graph}")
    print(f"plan:  {workload.spst_plan}\n")

    engine = DistributedPageRank(relation, workload.spst_plan)
    result = engine.run(tol=1e-10, max_iters=100)
    print(f"converged in {result.iterations} iterations "
          f"(residual {result.residual:.2e})")
    print(f"simulated communication: "
          f"{result.simulated_comm_seconds * 1e3:.3f} ms "
          f"({result.simulated_comm_seconds / result.iterations * 1e6:.2f} us "
          f"per iteration)")

    reference = pagerank(graph, max_iters=100, tol=1e-10)
    print(f"matches single-machine reference: "
          f"{np.allclose(result.ranks, reference, atol=1e-9)}\n")

    top = np.argsort(-result.ranks)[:5]
    print("top-5 vertices by rank:")
    for v in top:
        print(f"  vertex {v}: rank {result.ranks[v]:.6f} "
              f"(in-degree {graph.in_degree()[v]})")

    # The communication advantage carries over from GNN training:
    executor = PlanExecutor(workload.topology)
    rank_bytes = 8  # one float64 per vertex
    t_spst = executor.execute(workload.spst_plan, rank_bytes).total_time
    t_p2p = executor.execute(workload.p2p_plan, rank_bytes).total_time
    print(f"\nper-iteration allgather: DGCL {t_spst * 1e6:.2f} us vs "
          f"peer-to-peer {t_p2p * 1e6:.2f} us ({t_p2p / t_spst:.2f}x)")


if __name__ == "__main__":
    main()
