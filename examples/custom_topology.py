"""Planning on a custom hardware topology.

Builds a 6-GPU machine by hand — two sockets, mixed NVLink/PCIe, a
contended QPI — then inspects what SPST does with a hub-heavy workload:
which links carry traffic, how multicast trees forward through relay
GPUs, and how the plan compares to peer-to-peer on the same wires.

Run:  python examples/custom_topology.py
"""

import numpy as np

from repro.core import CommRelation, SPSTPlanner, peer_to_peer_plan
from repro.graph import star_graph
from repro.graph.generators import rmat
from repro.simulator import PlanExecutor
from repro.topology import LinkKind, TopologyBuilder


def build_topology():
    """Two sockets of 3 GPUs; NVLink rings inside, QPI between."""
    b = TopologyBuilder("custom-6gpu")
    for socket in (0, 0, 0, 1, 1, 1):
        b.add_device(socket=socket, switch=socket)

    # NVLink ring within each socket.
    for a, c in [(0, 1), (1, 2), (0, 2)]:
        b.add_duplex_link(a, c, LinkKind.NV1)
        b.add_duplex_link(a + 3, c + 3, LinkKind.NV2)

    # Cross-socket: every pair shares the single QPI per direction.
    for src_socket, dst_socket in [(0, 1), (1, 0)]:
        qpi = b.connection(f"qpi:{src_socket}->{dst_socket}", LinkKind.QPI)
        for a in range(3):
            for c in range(3):
                src = a + 3 * src_socket
                dst = c + 3 * dst_socket
                out_lane = b.connection(f"pcie:gpu{src}:out", LinkKind.PCIE)
                in_lane = b.connection(f"pcie:gpu{dst}:in", LinkKind.PCIE)
                b.add_link(src, dst, (out_lane, qpi, in_lane))
    return b.build()


def main() -> None:
    topology = build_topology()
    print(f"topology: {topology}")
    for link in topology.links_from(0):
        print(f"  {link}")

    # A hub-heavy graph: device 0's vertices are consumed everywhere —
    # the worst case for peer-to-peer over the shared QPI.
    graph = rmat(600, 6000, seed=1)
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, 6, graph.num_vertices)
    relation = CommRelation(graph, assignment, 6)
    print(f"\nrelation: {relation}")

    plan = SPSTPlanner(topology, seed=0).plan(relation)
    p2p = peer_to_peer_plan(relation, topology)
    print(f"SPST plan: {plan}")
    print(f"p2p plan:  {p2p}")

    print("\ntraffic by link kind (embedding rows):")
    print(f"  SPST: { {str(k): v for k, v in plan.volume_by_kind().items()} }")
    print(f"  p2p:  { {str(k): v for k, v in p2p.volume_by_kind().items()} }")

    # A look inside one multicast tree that spans both sockets.
    for route in plan.routes:
        sockets = {topology.socket_of[d] for d in route.destinations}
        if len(sockets) > 1 and len(route.edges) > len(route.destinations):
            print(f"\na forwarding tree for {route.weight} vertices "
                  f"from GPU {route.source} to {route.destinations}:")
            for link, stage in sorted(route.edges, key=lambda e: e[1]):
                print(f"  stage {stage}: {link}")
            break

    executor = PlanExecutor(topology)
    bpu = 256 * 4
    t_spst = executor.execute(plan, bpu).total_time
    t_p2p = executor.execute(p2p, bpu).total_time
    print(f"\nsimulated allgather (256-dim embeddings):")
    print(f"  SPST: {t_spst * 1e6:8.1f} us")
    print(f"  p2p:  {t_p2p * 1e6:8.1f} us   ({t_p2p / t_spst:.2f}x slower)")

    est = plan.estimated_cost(bpu)
    print(f"  cost-model estimate for SPST: {est * 1e6:8.1f} us "
          f"({abs(est - t_spst) / t_spst:.1%} from simulation)")


if __name__ == "__main__":
    main()
