"""Compare the four communication schemes on one workload (Figure 7 style).

Evaluates DGCL, Peer-to-peer, Swap and Replication on a dataset twin and
prints the simulated per-epoch breakdown, including OOM verdicts.

Run:  python examples/compare_strategies.py [dataset] [model] [gpus]
e.g.  python examples/compare_strategies.py com-orkut gcn 8
"""

import sys

from repro.baselines import SCHEMES, Workload, evaluate_dgcl_r, evaluate_scheme
from repro.graph.datasets import DATASETS
from repro.topology import topology_for_gpu_count


def main(dataset: str = "web-google", model: str = "gcn", gpus: int = 8) -> None:
    if dataset not in DATASETS:
        raise SystemExit(f"unknown dataset {dataset!r}; pick from {sorted(DATASETS)}")
    topology = topology_for_gpu_count(gpus)
    print(f"workload: {dataset} x {model} on {topology}")
    print("partitioning and planning (cached after the first run) ...\n")
    workload = Workload(dataset, model, topology)

    header = f"{'scheme':14s} {'epoch (ms)':>11s} {'comm (ms)':>10s} {'compute (ms)':>13s}  status"
    print(header)
    print("-" * len(header))
    results = []
    for scheme in SCHEMES:
        r = evaluate_scheme(workload, scheme=scheme)
        results.append(r)
        if r.ok:
            print(f"{scheme:14s} {r.ms():>11.3f} {r.ms('comm_time'):>10.3f} "
                  f"{r.ms('compute_time'):>13.3f}  ok")
        else:
            print(f"{scheme:14s} {'-':>11s} {'-':>10s} {'-':>13s}  {r.status.upper()}")
    if topology.num_machines() > 1:
        r = evaluate_dgcl_r(workload)
        if r.ok:
            print(f"{'dgcl-r':14s} {r.ms():>11.3f} {r.ms('comm_time'):>10.3f} "
                  f"{r.ms('compute_time'):>13.3f}  ok")
        else:
            print(f"{'dgcl-r':14s} {'-':>11s} {'-':>10s} {'-':>13s}  {r.status.upper()}")

    ok = [r for r in results if r.ok]
    winner = min(ok, key=lambda r: r.epoch_time)
    print(f"\nfastest: {winner.scheme} at {winner.ms():.3f} ms/epoch")
    p2p = next((r for r in results if r.scheme == "peer-to-peer" and r.ok), None)
    dgcl = next((r for r in results if r.scheme == "dgcl" and r.ok), None)
    if p2p and dgcl and p2p.comm_time > 0:
        saved = 1 - dgcl.comm_time / p2p.comm_time
        print(f"DGCL cuts peer-to-peer communication time by {saved:.1%} "
              f"(paper: 77.5% on average)")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(
        args[0] if len(args) > 0 else "web-google",
        args[1] if len(args) > 1 else "gcn",
        int(args[2]) if len(args) > 2 else 8,
    )
