"""Trace the decentralized coordination protocol (paper §6.1).

Runs one graphAllgather through the message-level master/client runtime
— ready/done flags, live network, real embedding rows — and prints the
per-device progress, a transfer Gantt chart, and what a straggling GPU
does to its partners under decentralized vs centralized coordination.

Run:  python examples/protocol_trace.py
"""

import numpy as np

from repro.core import CommRelation, SPSTPlanner
from repro.graph.generators import rmat
from repro.partition import partition
from repro.runtime import ProtocolRunner
from repro.simulator import PlanExecutor
from repro.simulator.timeline import render_gantt
from repro.topology import dgx1


def main() -> None:
    graph = rmat(400, 3000, seed=2)
    result = partition(graph, 8, seed=0)
    relation = CommRelation(graph, result.assignment, 8)
    topology = dgx1()
    plan = SPSTPlanner(topology, seed=0).plan(relation)
    print(f"plan: {plan}\n")

    # ---- run the full protocol with real data ------------------------
    rng = np.random.default_rng(0)
    h = rng.standard_normal((graph.num_vertices, 64)).astype(np.float32)
    blocks = [h[relation.local_vertices[d]] for d in range(8)]
    runner = ProtocolRunner(relation, plan)
    gathered, report = runner.run_data(blocks)
    print(f"protocol completed in {report.total_time * 1e6:.2f} us "
          f"({report.transfers} transfers)")
    print("per-device finish times:")
    for device, finish in sorted(report.device_finish.items()):
        bar = "#" * int(40 * finish / report.total_time)
        print(f"  GPU {device}: {finish * 1e6:7.2f} us |{bar}")

    # sanity: the rows really arrived
    for d in range(8):
        layout = np.concatenate(
            [relation.local_vertices[d], relation.remote_vertices[d]]
        )
        assert np.array_equal(gathered[d], h[layout])
    print("every device holds exactly its local + remote rows\n")

    # ---- transfer-level Gantt from the flow simulator ----------------
    exec_report = PlanExecutor(topology).execute(plan, 64 * 4)
    print("transfer timeline (flow-level view):")
    print(render_gantt(exec_report, max_rows=24))

    # ---- straggler study ---------------------------------------------
    delay = 2e-5
    print(f"\ninjecting a {delay * 1e6:.0f} us stall into GPU 7:")
    for mode in ("decentralized", "centralized"):
        base = ProtocolRunner(relation, plan, coordination=mode).run_timed(256)
        slow = ProtocolRunner(
            relation, plan, coordination=mode, device_delays={7: delay}
        ).run_timed(256)
        extras = [
            slow.device_finish[d] - base.device_finish[d] for d in range(7)
        ]
        print(f"  {mode:14s}: other GPUs absorb "
              f"{min(extras) * 1e6:6.2f}-{max(extras) * 1e6:6.2f} us of it "
              f"(total {slow.total_time * 1e6:.2f} us)")
    print("\ndecentralized coordination lets pairs that do not touch the "
          "straggler keep moving — §6.1's design argument.")


if __name__ == "__main__":
    main()
