"""Trace one distributed training epoch and export it for Perfetto.

Arms a :class:`~repro.obs.tracer.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry` on the distributed trainer,
runs one epoch of a 2-layer GCN on the Reddit twin across 4 simulated
GPUs, and writes a Chrome ``trace_event`` file.  Open the output in
https://ui.perfetto.dev (or chrome://tracing): one row per trainer
phase, one per device, one per physical wire — every timestamp is
simulated, so the same seed always produces the byte-identical file.

Run:  python examples/trace_epoch.py [out.trace.json]
"""

import sys

from repro.baselines import Workload
from repro.gnn.distributed import DistributedTrainer
from repro.graph.datasets import synthetic_features, synthetic_labels
from repro.obs import MetricsRegistry, Tracer, stats_table, write_chrome_trace
from repro.topology import topology_for_gpu_count


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "epoch.trace.json"
    workload = Workload("reddit", "gcn", topology_for_gpu_count(4))
    spec = workload.spec
    features = synthetic_features(workload.graph, spec.feature_size)
    labels = synthetic_labels(workload.graph, spec.num_classes)

    tracer, metrics = Tracer(), MetricsRegistry()
    trainer = DistributedTrainer(
        workload.relation, workload.spst_plan, workload.model,
        features, labels, tracer=tracer, metrics=metrics,
    )
    result = trainer.run_epoch()
    print(f"epoch 0: loss = {result.loss:.4f}, "
          f"{tracer.duration() * 1e3:.3f} ms simulated")

    print("\ntrainer phases:")
    for span in tracer.by_track("trainer"):
        print(f"  {span.start * 1e6:9.2f} - {span.finish * 1e6:9.2f} us  "
              f"{span.name}")

    print("\nmetrics:")
    print(stats_table(metrics))

    write_chrome_trace(tracer, out, metrics=metrics)
    print(f"\nwrote {len(tracer.events())} spans on "
          f"{len(tracer.tracks())} tracks to {out}")


if __name__ == "__main__":
    main()
