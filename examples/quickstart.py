"""Quickstart: the paper's Listing 1, end to end.

Trains a 2-layer GCN on the Web-Google twin across 8 simulated GPUs:
partition the graph, plan communication with SPST, run real distributed
epochs (embeddings genuinely travel through the planned trees), and
check the result matches single-GPU training bit for bit.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.api as dgcl
from repro.core import CommRelation
from repro.gnn import SingleDeviceTrainer, build_gcn
from repro.gnn.distributed import DistributedTrainer
from repro.graph import load_dataset
from repro.graph.datasets import DATASETS, synthetic_features, synthetic_labels
from repro.topology import dgx1


def main() -> None:
    spec = DATASETS["web-google"]
    graph = load_dataset("web-google")
    print(f"dataset: {graph}")

    # ---- Listing 1, lines 9-12: init, buildCommInfo, dispatch --------
    topology = dgx1()
    dgcl.init(topology)
    report = dgcl.build_comm_info(graph)
    plan = report.plan
    print(f"topology: {topology}")
    print(f"plan:     {plan}")
    print(f"          planned cost: {report.total_cost * 1e6:.2f} us over "
          f"{report.num_stages} stage(s) [{report.engine} engine]")
    print(f"          volume by link kind: "
          f"{ {str(k): v for k, v in plan.volume_by_kind().items()} }")

    features = synthetic_features(graph, spec.feature_size)
    labels = synthetic_labels(graph, spec.num_classes)

    # ---- distributed training (the forward loop of Listing 1) --------
    session = dgcl._session()
    relation = session.relation
    model = build_gcn(spec.feature_size, spec.hidden_size, spec.num_classes,
                      seed=42)
    trainer = DistributedTrainer(relation, plan, model, features, labels,
                                 lr=0.05)
    print("\ntraining 5 epochs on 8 simulated GPUs:")
    for epoch in range(5):
        result = trainer.run_epoch()
        print(f"  epoch {epoch}: loss = {result.loss:.4f}")

    # ---- sanity: distributed == single-GPU --------------------------
    reference = SingleDeviceTrainer(
        graph,
        build_gcn(spec.feature_size, spec.hidden_size, spec.num_classes,
                  seed=42),
        features, labels, lr=0.05,
    )
    ref_losses = reference.train(5)
    match = np.allclose(ref_losses, trainer.loss_history, rtol=1e-4)
    print(f"\nsingle-GPU reference losses: "
          f"{[f'{l:.4f}' for l in ref_losses]}")
    print(f"distributed == single-GPU: {match}")

    est = plan.estimated_cost(spec.feature_size * 4)
    simulated = session.executor.execute(plan, spec.feature_size * 4).total_time
    print(f"\ncost model estimate for one allgather: {est * 1e6:.1f} us")
    print(f"simulated execution of one allgather:  {simulated * 1e6:.1f} us")
    assert match, "distributed training diverged from the reference!"


if __name__ == "__main__":
    main()
